#include "fabp/util/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace fabp::util {

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm{seed};
  for (auto& w : s_) w = sm.next();
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  // Lemire 2019: multiply-shift with rejection of the biased low range.
  using u128 = unsigned __int128;
  std::uint64_t x = next();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(bounded(span));
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Xoshiro256::normal() noexcept {
  // Box-Muller; guard the log argument away from zero.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Xoshiro256::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until below exp(-lambda).
    const double threshold = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > threshold);
    return k - 1;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double draw = normal(lambda, std::sqrt(lambda)) + 0.5;
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
}

std::uint64_t Xoshiro256::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t Xoshiro256::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

Xoshiro256 Xoshiro256::fork(std::uint64_t stream) noexcept {
  SplitMix64 sm{s_[0] ^ (stream * 0xd1342543de82ef95ULL)};
  Xoshiro256 child{sm.next()};
  return child;
}

}  // namespace fabp::util
