#include "fabp/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace fabp::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace fabp::util
