#include "fabp/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace fabp::util {

Table::Table(std::vector<std::string> header) : header_{std::move(header)} {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(const char* text) { return cell(std::string{text}); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "  ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << text;
    }
    os << '\n';
  };

  print_row(header_);
  os << "  ";
  for (std::size_t c = 0; c < widths.size(); ++c)
    os << std::string(widths[c], '-') << "  ";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << sanitize(header_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << sanitize(row[c]);
    os << '\n';
  }
}

std::string ratio_text(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value << "x";
  return os.str();
}

std::string bandwidth_text(double bytes_per_second) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (bytes_per_second >= 1e9)
    os << bytes_per_second / 1e9 << " GB/s";
  else if (bytes_per_second >= 1e6)
    os << bytes_per_second / 1e6 << " MB/s";
  else if (bytes_per_second >= 1e3)
    os << bytes_per_second / 1e3 << " KB/s";
  else
    os << bytes_per_second << " B/s";
  return os.str();
}

std::string time_text(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  const double abs = std::fabs(seconds);
  if (abs >= 1.0)
    os << seconds << " s";
  else if (abs >= 1e-3)
    os << seconds * 1e3 << " ms";
  else if (abs >= 1e-6)
    os << seconds * 1e6 << " us";
  else
    os << seconds * 1e9 << " ns";
  return os.str();
}

std::string percent_text(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace fabp::util
