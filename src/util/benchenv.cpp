#include "fabp/util/benchenv.hpp"

#include <fstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace fabp::util {

namespace {

std::size_t probe_affinity(std::size_t fallback) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<std::size_t>(n);
  }
#endif
  return fallback;
}

std::string probe_governor() {
  std::ifstream in{
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"};
  std::string governor;
  if (in && std::getline(in, governor) && !governor.empty()) return governor;
  return "unknown";
}

}  // namespace

BenchEnv probe_bench_env() {
  BenchEnv env;
  env.hardware_threads = std::thread::hardware_concurrency();
  env.affinity_cpus = probe_affinity(env.hardware_threads);
  env.governor = probe_governor();
  return env;
}

}  // namespace fabp::util
