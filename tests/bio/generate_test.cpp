#include "fabp/bio/generate.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fabp/bio/codon.hpp"
#include "fabp/bio/translation.hpp"

namespace fabp::bio {
namespace {

TEST(RandomDna, LengthAndAlphabet) {
  util::Xoshiro256 rng{1};
  const NucleotideSequence seq = random_dna(1000, rng);
  EXPECT_EQ(seq.size(), 1000u);
  EXPECT_EQ(seq.kind(), SeqKind::Dna);
}

TEST(RandomDna, GcContentRespected) {
  util::Xoshiro256 rng{2};
  for (double gc : {0.2, 0.5, 0.8}) {
    const NucleotideSequence seq = random_dna(20'000, rng, gc);
    std::size_t gc_count = 0;
    for (Nucleotide n : seq)
      if (n == Nucleotide::G || n == Nucleotide::C) ++gc_count;
    EXPECT_NEAR(static_cast<double>(gc_count) / 20'000.0, gc, 0.02);
  }
}

TEST(RandomProtein, NoStopResidues) {
  util::Xoshiro256 rng{3};
  const ProteinSequence p = random_protein(5000, rng);
  for (AminoAcid aa : p) EXPECT_NE(aa, AminoAcid::Stop);
}

TEST(RandomProtein, CommonResiduesMoreFrequent) {
  util::Xoshiro256 rng{4};
  const ProteinSequence p = random_protein(50'000, rng);
  std::size_t leu = 0, trp = 0;
  for (AminoAcid aa : p) {
    if (aa == AminoAcid::Leu) ++leu;
    if (aa == AminoAcid::Trp) ++trp;
  }
  // Leu ~9.7%, Trp ~1.1% in the Swiss-Prot composition.
  EXPECT_GT(leu, trp * 4);
}

TEST(RandomCodingSequence, TranslatesBack) {
  util::Xoshiro256 rng{5};
  const ProteinSequence p = random_protein(200, rng);
  const NucleotideSequence coding = random_coding_sequence(p, rng);
  EXPECT_EQ(coding.size(), p.size() * 3);
  EXPECT_EQ(translate(coding), p);
}

TEST(RandomCodingSequence, UsesSynonymousVariety) {
  // Over many Leu codons, more than one synonymous codon should appear.
  util::Xoshiro256 rng{6};
  ProteinSequence p;
  for (int i = 0; i < 200; ++i) p.push_back(AminoAcid::Leu);
  const NucleotideSequence coding = random_coding_sequence(p, rng);
  std::set<std::string> codons;
  for (std::size_t i = 0; i < coding.size(); i += 3)
    codons.insert(coding.subsequence(i, 3).to_string());
  EXPECT_GT(codons.size(), 3u);
}

TEST(SyntheticDatabase, BuildsRequestedShape) {
  DatabaseSpec spec;
  spec.total_bases = 100'000;
  spec.gene_count = 10;
  spec.gene_length = 60;
  const SyntheticDatabase db = SyntheticDatabase::build(spec);
  EXPECT_EQ(db.dna.size(), spec.total_bases);
  ASSERT_EQ(db.genes.size(), spec.gene_count);
  for (const auto& gene : db.genes)
    EXPECT_EQ(gene.protein.size(), spec.gene_length);
}

TEST(SyntheticDatabase, GenesDoNotOverlapAndAreSorted) {
  DatabaseSpec spec;
  spec.total_bases = 50'000;
  spec.gene_count = 8;
  spec.gene_length = 50;
  const SyntheticDatabase db = SyntheticDatabase::build(spec);
  for (std::size_t g = 1; g < db.genes.size(); ++g)
    EXPECT_GE(db.genes[g].dna_position,
              db.genes[g - 1].dna_position + 3 * spec.gene_length);
}

TEST(SyntheticDatabase, PlantedGenesTranslateInPlace) {
  DatabaseSpec spec;
  spec.total_bases = 30'000;
  spec.gene_count = 5;
  spec.gene_length = 40;
  const SyntheticDatabase db = SyntheticDatabase::build(spec);
  for (const auto& gene : db.genes) {
    const NucleotideSequence coding =
        db.dna.subsequence(gene.dna_position, gene.protein.size() * 3);
    EXPECT_EQ(translate(coding), gene.protein);
  }
}

TEST(SyntheticDatabase, DeterministicForSeed) {
  DatabaseSpec spec;
  spec.total_bases = 10'000;
  spec.gene_count = 3;
  spec.gene_length = 30;
  const SyntheticDatabase a = SyntheticDatabase::build(spec);
  const SyntheticDatabase b = SyntheticDatabase::build(spec);
  EXPECT_EQ(a.dna, b.dna);
}

TEST(SyntheticDatabase, ThrowsWhenGenesDoNotFit) {
  DatabaseSpec spec;
  spec.total_bases = 100;
  spec.gene_count = 10;
  spec.gene_length = 10;
  EXPECT_THROW(SyntheticDatabase::build(spec), std::invalid_argument);
}

TEST(SampleQueries, PlantedQueriesAreSubstrings) {
  DatabaseSpec spec;
  spec.total_bases = 60'000;
  spec.gene_count = 6;
  spec.gene_length = 80;
  const SyntheticDatabase db = SyntheticDatabase::build(spec);

  QuerySpec qspec;
  qspec.length = 30;
  const QuerySet qs = sample_queries(db, 20, qspec, 1.0);
  ASSERT_EQ(qs.queries.size(), 20u);
  for (std::size_t i = 0; i < qs.queries.size(); ++i) {
    ASSERT_GE(qs.source_gene[i], 0);
    const auto& gene = db.genes[static_cast<std::size_t>(qs.source_gene[i])];
    EXPECT_NE(gene.protein.to_string().find(qs.queries[i].to_string()),
              std::string::npos);
  }
}

TEST(SampleQueries, BackgroundQueriesMarked) {
  DatabaseSpec spec;
  spec.total_bases = 20'000;
  spec.gene_count = 2;
  spec.gene_length = 40;
  const SyntheticDatabase db = SyntheticDatabase::build(spec);
  QuerySpec qspec;
  qspec.length = 25;
  const QuerySet qs = sample_queries(db, 50, qspec, 0.0);
  for (int g : qs.source_gene) EXPECT_EQ(g, -1);
}

TEST(SampleQueries, QueryLengthClampedToGene) {
  DatabaseSpec spec;
  spec.total_bases = 20'000;
  spec.gene_count = 2;
  spec.gene_length = 20;
  const SyntheticDatabase db = SyntheticDatabase::build(spec);
  QuerySpec qspec;
  qspec.length = 100;  // longer than any gene
  const QuerySet qs = sample_queries(db, 5, qspec, 1.0);
  for (const auto& q : qs.queries) EXPECT_EQ(q.size(), 20u);
}

}  // namespace
}  // namespace fabp::bio
