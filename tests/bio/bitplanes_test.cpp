#include "fabp/bio/bitplanes.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/util/bitops.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::bio {
namespace {

bool plane_bit(std::span<const std::uint64_t> plane, std::size_t i) {
  return util::bit(plane[i / 64], static_cast<unsigned>(i % 64));
}

TEST(Bitplanes, OccurrenceMatchesSequence) {
  util::Xoshiro256 rng{11};
  const NucleotideSequence seq = random_dna(300, rng);
  const NucleotideBitplanes planes{seq};
  ASSERT_EQ(planes.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    for (Nucleotide n : kAllNucleotides)
      EXPECT_EQ(plane_bit(planes.occurrence(n), i), seq[i] == n) << i;
    EXPECT_EQ(plane_bit(planes.lsb(), i), (code(seq[i]) & 1) != 0) << i;
    EXPECT_EQ(plane_bit(planes.msb(), i), (code(seq[i]) & 2) != 0) << i;
  }
}

TEST(Bitplanes, OccurrencePlanesPartitionPositions) {
  // Every valid position belongs to exactly one occurrence plane, and the
  // four planes OR together to the valid mask.
  util::Xoshiro256 rng{13};
  const NucleotideBitplanes planes{random_dna(517, rng)};
  for (std::size_t w = 0; w < planes.word_count(); ++w) {
    std::uint64_t any = 0;
    for (Nucleotide n : kAllNucleotides) {
      EXPECT_EQ(any & planes.occurrence(n)[w], 0u) << w;
      any |= planes.occurrence(n)[w];
    }
    EXPECT_EQ(any, planes.valid()[w]) << w;
  }
}

TEST(Bitplanes, HistoryPlanesAreShiftedCodes) {
  util::Xoshiro256 rng{17};
  const NucleotideSequence seq = random_dna(200, rng);
  const NucleotideBitplanes planes{seq};
  EXPECT_FALSE(plane_bit(planes.prev1_msb(), 0));
  EXPECT_FALSE(plane_bit(planes.prev2_msb(), 0));
  EXPECT_FALSE(plane_bit(planes.prev2_lsb(), 1));
  for (std::size_t i = 1; i < seq.size(); ++i)
    EXPECT_EQ(plane_bit(planes.prev1_msb(), i), (code(seq[i - 1]) & 2) != 0)
        << i;
  for (std::size_t i = 2; i < seq.size(); ++i) {
    EXPECT_EQ(plane_bit(planes.prev2_msb(), i), (code(seq[i - 2]) & 2) != 0)
        << i;
    EXPECT_EQ(plane_bit(planes.prev2_lsb(), i), (code(seq[i - 2]) & 1) != 0)
        << i;
  }
}

TEST(Bitplanes, TailWordIsMasked) {
  // Lengths straddling word boundaries: every plane must be zero at bit
  // positions >= size(), even though the packed store pads with A (00).
  for (std::size_t len : {1u, 63u, 64u, 65u, 127u, 128u, 130u, 200u}) {
    // All-A input maximises the hazard: the padding is indistinguishable
    // from data in the packed words.
    NucleotideSequence seq{SeqKind::Dna};
    for (std::size_t i = 0; i < len; ++i) seq.push_back(Nucleotide::A);
    const NucleotideBitplanes planes{seq};
    const std::size_t padded_bits = planes.padded_word_count() * 64;
    for (std::size_t i = len; i < padded_bits; ++i) {
      for (Nucleotide n : kAllNucleotides)
        EXPECT_FALSE(plane_bit(planes.occurrence(n), i)) << len << " " << i;
      EXPECT_FALSE(plane_bit(planes.valid(), i)) << len << " " << i;
      EXPECT_FALSE(plane_bit(planes.prev1_msb(), i)) << len << " " << i;
      EXPECT_FALSE(plane_bit(planes.prev2_msb(), i)) << len << " " << i;
      EXPECT_FALSE(plane_bit(planes.prev2_lsb(), i)) << len << " " << i;
    }
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_TRUE(plane_bit(planes.occurrence(Nucleotide::A), i));
      EXPECT_TRUE(plane_bit(planes.valid(), i));
    }
  }
}

TEST(Bitplanes, GuardWordStaysZeroOnRandomData) {
  util::Xoshiro256 rng{23};
  for (std::size_t len : {64u, 128u, 192u}) {  // exact multiples of 64
    const NucleotideBitplanes planes{random_dna(len, rng)};
    ASSERT_EQ(planes.padded_word_count(), planes.word_count() + 1);
    for (Nucleotide n : kAllNucleotides)
      EXPECT_EQ(planes.occurrence(n)[planes.word_count()], 0u) << len;
    EXPECT_EQ(planes.valid()[planes.word_count()], 0u) << len;
    EXPECT_EQ(planes.prev1_msb()[planes.word_count()], 0u) << len;
  }
}

TEST(Bitplanes, EmptySequence) {
  const NucleotideBitplanes planes{NucleotideSequence{}};
  EXPECT_TRUE(planes.empty());
  EXPECT_EQ(planes.word_count(), 0u);
  EXPECT_EQ(planes.padded_word_count(), 1u);
  EXPECT_EQ(planes.valid()[0], 0u);
}

TEST(Bitplanes, PackedAndSequenceConstructorsAgree) {
  util::Xoshiro256 rng{29};
  const NucleotideSequence seq = random_dna(333, rng);
  const PackedNucleotides packed{seq};
  const NucleotideBitplanes from_seq{seq};
  const NucleotideBitplanes from_packed{packed};
  ASSERT_EQ(from_seq.size(), from_packed.size());
  for (std::size_t w = 0; w < from_seq.padded_word_count(); ++w) {
    for (Nucleotide n : kAllNucleotides)
      EXPECT_EQ(from_seq.occurrence(n)[w], from_packed.occurrence(n)[w]);
    EXPECT_EQ(from_seq.prev2_lsb()[w], from_packed.prev2_lsb()[w]);
  }
}

}  // namespace
}  // namespace fabp::bio
