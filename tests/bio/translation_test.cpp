#include "fabp/bio/translation.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"

namespace fabp::bio {
namespace {

TEST(Translate, SimplePeptide) {
  const auto rna = NucleotideSequence::parse(SeqKind::Rna, "AUGUUUUCU");
  EXPECT_EQ(translate(rna).to_string(), "MFS");
}

TEST(Translate, StopsBecomeResidues) {
  const auto rna = NucleotideSequence::parse(SeqKind::Rna, "AUGUAAUGG");
  EXPECT_EQ(translate(rna).to_string(), "M*W");
}

TEST(Translate, OffsetFrames) {
  const auto rna = NucleotideSequence::parse(SeqKind::Rna, "AAUGUUU");
  EXPECT_EQ(translate(rna, 1).to_string(), "MF");
}

TEST(Translate, TrailingBasesIgnored) {
  const auto rna = NucleotideSequence::parse(SeqKind::Rna, "AUGUU");
  EXPECT_EQ(translate(rna).to_string(), "M");
}

TEST(Translate, OffsetPastEndIsEmpty) {
  const auto rna = NucleotideSequence::parse(SeqKind::Rna, "AUG");
  EXPECT_TRUE(translate(rna, 5).empty());
}

TEST(SixFrame, ProducesSixFrames) {
  const auto dna = NucleotideSequence::parse(SeqKind::Dna, "ATGAAACCCGGG");
  const auto frames = six_frame_translate(dna);
  EXPECT_EQ(frames[0].id.frame, 0);
  EXPECT_EQ(frames[5].id.frame, 5);
  EXPECT_EQ(frames[0].protein.to_string(), "MKPG");
  // Frame 1 drops one base: TGA AAC CCG GG -> *, N, P
  EXPECT_EQ(frames[1].protein.to_string(), "*NP");
}

TEST(SixFrame, ReverseFramesUseReverseComplement) {
  const auto dna = NucleotideSequence::parse(SeqKind::Dna, "ATGAAA");
  // revcomp = TTTCAT -> frame 3 translates TTTCAT = F, H... FH? TTT=F CAT=H.
  const auto frames = six_frame_translate(dna);
  EXPECT_EQ(frames[3].protein.to_string(), "FH");
}

TEST(SixFrame, FrameLengthsCoverSequence) {
  const auto dna = NucleotideSequence::parse(SeqKind::Dna,
                                             "ATGAAACCCGGGTTTAA");
  const auto frames = six_frame_translate(dna);
  for (const auto& f : frames) {
    const std::size_t expect = (dna.size() - f.id.offset()) / 3;
    EXPECT_EQ(f.protein.size(), expect) << f.id.frame;
  }
}

TEST(SixFrame, NucleotidePositionForward) {
  const auto dna = NucleotideSequence::parse(SeqKind::Dna, "AATGAAACCC");
  const auto frames = six_frame_translate(dna);
  EXPECT_EQ(frames[0].nucleotide_position(0, dna.size()), 0u);
  EXPECT_EQ(frames[0].nucleotide_position(2, dna.size()), 6u);
  EXPECT_EQ(frames[1].nucleotide_position(1, dna.size()), 4u);
}

TEST(SixFrame, NucleotidePositionReverseMapsInsideSequence) {
  const auto dna = NucleotideSequence::parse(SeqKind::Dna, "ATGAAACCCGGG");
  const auto frames = six_frame_translate(dna);
  for (int f = 3; f < 6; ++f) {
    const auto& frame = frames[static_cast<std::size_t>(f)];
    for (std::size_t p = 0; p < frame.protein.size(); ++p) {
      const std::size_t pos = frame.nucleotide_position(p, dna.size());
      EXPECT_LE(pos + 3, dna.size()) << "frame " << f << " residue " << p;
    }
  }
}

TEST(SixFrame, PlantedProteinRecoverableFromSomeFrame) {
  util::Xoshiro256 rng{77};
  const ProteinSequence protein = random_protein(30, rng);
  const NucleotideSequence coding = random_coding_sequence(protein, rng);
  // Embed at offset 1 in a DNA context.
  auto dna = NucleotideSequence::parse(SeqKind::Dna, "G");
  dna.append(NucleotideSequence{SeqKind::Dna, coding.bases()});
  dna.push_back(Nucleotide::C);
  dna.push_back(Nucleotide::C);

  const auto frames = six_frame_translate(dna);
  bool found = false;
  const std::string want = protein.to_string();
  for (const auto& frame : frames)
    if (frame.protein.to_string().find(want) != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(FindOrfs, DetectsSimpleOrf) {
  // AUG AAA UAA = Met Lys Stop.
  const auto rna = NucleotideSequence::parse(SeqKind::Rna, "CCAUGAAAUAACC");
  const auto orfs = find_orfs(rna, 1);
  ASSERT_EQ(orfs.size(), 1u);
  EXPECT_EQ(orfs[0].begin, 2u);
  EXPECT_EQ(orfs[0].end, 11u);
  EXPECT_EQ(orfs[0].protein.to_string(), "MK");
}

TEST(FindOrfs, RespectsMinimumLength) {
  const auto rna = NucleotideSequence::parse(SeqKind::Rna, "AUGAAAUAA");
  EXPECT_EQ(find_orfs(rna, 2).size(), 1u);
  EXPECT_EQ(find_orfs(rna, 3).size(), 0u);
}

TEST(FindOrfs, NoStopNoOrf) {
  const auto rna = NucleotideSequence::parse(SeqKind::Rna, "AUGAAAAAA");
  EXPECT_TRUE(find_orfs(rna, 1).empty());
}

}  // namespace
}  // namespace fabp::bio
