#include "fabp/bio/packed.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::bio {
namespace {

TEST(Packed, EmptyStore) {
  PackedNucleotides p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.beat_count(), 0u);
  EXPECT_EQ(p.byte_size(), 0u);
}

TEST(Packed, PackUnpackRoundTrip) {
  util::Xoshiro256 rng{5};
  for (std::size_t len : {1u, 31u, 32u, 33u, 255u, 256u, 257u, 1000u}) {
    const NucleotideSequence seq = random_dna(len, rng);
    const PackedNucleotides packed{seq};
    EXPECT_EQ(packed.size(), len);
    EXPECT_EQ(packed.unpack(SeqKind::Dna), seq) << len;
  }
}

TEST(Packed, GetMatchesSequence) {
  util::Xoshiro256 rng{6};
  const NucleotideSequence seq = random_dna(500, rng);
  const PackedNucleotides packed{seq};
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_EQ(packed.get(i), seq[i]) << i;
}

TEST(Packed, SetOverwrites) {
  PackedNucleotides p{NucleotideSequence::parse(SeqKind::Dna, "AAAA")};
  p.set(2, Nucleotide::G);
  EXPECT_EQ(p.get(2), Nucleotide::G);
  EXPECT_EQ(p.get(1), Nucleotide::A);
  EXPECT_EQ(p.get(3), Nucleotide::A);
}

TEST(Packed, PushBackAcrossWordBoundary) {
  PackedNucleotides p;
  util::Xoshiro256 rng{7};
  NucleotideSequence expected{SeqKind::Dna};
  for (int i = 0; i < 100; ++i) {
    const auto n = nucleotide_from_code(
        static_cast<std::uint8_t>(rng.bounded(4)));
    p.push_back(n);
    expected.push_back(n);
  }
  EXPECT_EQ(p.unpack(SeqKind::Dna), expected);
}

TEST(Packed, TwoBitsPerElement) {
  // 256 elements = 512 bits = 64 bytes = exactly one AXI beat.
  util::Xoshiro256 rng{8};
  const PackedNucleotides p{random_dna(256, rng)};
  EXPECT_EQ(p.byte_size(), 64u);
  EXPECT_EQ(p.beat_count(), 1u);
  EXPECT_EQ(p.beat_elements(0), 256u);
}

TEST(Packed, BeatPartitioning) {
  util::Xoshiro256 rng{9};
  const PackedNucleotides p{random_dna(600, rng)};
  EXPECT_EQ(p.beat_count(), 3u);
  EXPECT_EQ(p.beat_elements(0), 256u);
  EXPECT_EQ(p.beat_elements(1), 256u);
  EXPECT_EQ(p.beat_elements(2), 88u);
  EXPECT_EQ(p.beat_elements(3), 0u);
}

TEST(Packed, BeatWordsDecodeCorrectly) {
  util::Xoshiro256 rng{10};
  const NucleotideSequence seq = random_dna(520, rng);
  const PackedNucleotides p{seq};
  for (std::size_t b = 0; b < p.beat_count(); ++b) {
    const auto words = p.beat(b);
    const std::size_t n = p.beat_elements(b);
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t word = words[k / 32];
      const auto code = static_cast<std::uint8_t>(
          (word >> (2 * (k % 32))) & 3);
      EXPECT_EQ(nucleotide_from_code(code), seq[b * kElementsPerBeat + k]);
    }
  }
}

TEST(Packed, PaddingDecodesAsA) {
  const PackedNucleotides p{NucleotideSequence::parse(SeqKind::Dna, "GG")};
  const auto words = p.beat(0);
  // Elements beyond size decode as code 0 == A.
  EXPECT_EQ((words[0] >> 4) & 3, 0u);
}

TEST(Packed, SliceMatchesElementwiseExtraction) {
  util::Xoshiro256 rng{11};
  const NucleotideSequence seq = random_dna(517, rng);
  const PackedNucleotides p{seq};
  // Word-aligned, cross-word-shifted, word-straddling, whole, and empty
  // ranges — a slice must be byte-identical to packing the sub-sequence.
  const std::size_t cases[][2] = {{0, 517},  {0, 64},   {32, 64}, {33, 64},
                                  {63, 2},   {100, 0},  {1, 516}, {511, 6},
                                  {129, 31}, {256, 261}};
  for (const auto& [begin, count] : cases) {
    const PackedNucleotides sliced = p.slice(begin, count);
    ASSERT_EQ(sliced.size(), count);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(sliced.get(i), seq[begin + i]) << begin << "+" << i;
    // Trailing bits zeroed: equal content compares equal regardless of
    // source neighbourhood.
    std::vector<Nucleotide> sub{seq.bases().begin() + begin,
                                seq.bases().begin() + begin + count};
    EXPECT_EQ(sliced, PackedNucleotides{std::span<const Nucleotide>{sub}});
  }
  EXPECT_THROW(p.slice(510, 10), std::out_of_range);
  EXPECT_THROW(p.slice(518, 0), std::out_of_range);
}

TEST(Packed, ConstantsAreConsistent) {
  EXPECT_EQ(kElementsPerWord, 32u);
  EXPECT_EQ(kElementsPerBeat, 256u);
  EXPECT_EQ(kAxiBeatBits, 512u);
}

}  // namespace
}  // namespace fabp::bio
