#include "fabp/bio/sequence.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fabp::bio {
namespace {

TEST(NucleotideSequence, ParseDnaRoundTrip) {
  const auto seq = NucleotideSequence::parse(SeqKind::Dna, "ACGTACGT");
  EXPECT_EQ(seq.size(), 8u);
  EXPECT_EQ(seq.to_string(), "ACGTACGT");
}

TEST(NucleotideSequence, ParseRnaRendersU) {
  const auto seq = NucleotideSequence::parse(SeqKind::Rna, "ACGU");
  EXPECT_EQ(seq.to_string(), "ACGU");
}

TEST(NucleotideSequence, ParseAcceptsTForRna) {
  // T and U share one code; rendering follows the kind tag.
  const auto seq = NucleotideSequence::parse(SeqKind::Rna, "ACGT");
  EXPECT_EQ(seq.to_string(), "ACGU");
}

TEST(NucleotideSequence, ParseSkipsWhitespace) {
  const auto seq = NucleotideSequence::parse(SeqKind::Dna, "AC GT\nAC\tGT");
  EXPECT_EQ(seq.size(), 8u);
}

TEST(NucleotideSequence, ParseRejectsInvalid) {
  EXPECT_THROW(NucleotideSequence::parse(SeqKind::Dna, "ACGX"),
               std::invalid_argument);
}

TEST(NucleotideSequence, LenientParseSubstitutesIupac) {
  const auto result =
      NucleotideSequence::parse_lenient(SeqKind::Dna, "ACGTNNRY");
  EXPECT_EQ(result.sequence.size(), 8u);
  EXPECT_EQ(result.ambiguous, 4u);
  // Plain bases untouched.
  EXPECT_EQ(result.sequence.subsequence(0, 4).to_string(), "ACGT");
  // N/R -> A, Y -> C (first compatible base).
  EXPECT_EQ(result.sequence[4], Nucleotide::A);
  EXPECT_EQ(result.sequence[6], Nucleotide::A);
  EXPECT_EQ(result.sequence[7], Nucleotide::C);
}

TEST(NucleotideSequence, LenientParseAllAmbiguityCodes) {
  const auto result =
      NucleotideSequence::parse_lenient(SeqKind::Dna, "NRYSWKMBDHV");
  EXPECT_EQ(result.sequence.size(), 11u);
  EXPECT_EQ(result.ambiguous, 11u);
}

TEST(NucleotideSequence, LenientParseStillRejectsGarbage) {
  EXPECT_THROW(NucleotideSequence::parse_lenient(SeqKind::Dna, "ACGX"),
               std::invalid_argument);
  EXPECT_THROW(NucleotideSequence::parse_lenient(SeqKind::Dna, "AC1"),
               std::invalid_argument);
}

TEST(NucleotideSequence, LenientParseCleanInputHasNoSubstitutions) {
  const auto result =
      NucleotideSequence::parse_lenient(SeqKind::Rna, "ACGU ACGU");
  EXPECT_EQ(result.ambiguous, 0u);
  EXPECT_EQ(result.sequence,
            NucleotideSequence::parse(SeqKind::Rna, "ACGUACGU"));
}

TEST(NucleotideSequence, TranscribedKeepsBasesChangesKind) {
  const auto dna = NucleotideSequence::parse(SeqKind::Dna, "ATGC");
  const auto rna = dna.transcribed();
  EXPECT_EQ(rna.kind(), SeqKind::Rna);
  EXPECT_EQ(rna.to_string(), "AUGC");
  EXPECT_EQ(rna.bases(), dna.bases());
}

TEST(NucleotideSequence, ReverseComplement) {
  const auto dna = NucleotideSequence::parse(SeqKind::Dna, "AACGTT");
  EXPECT_EQ(dna.reverse_complement().to_string(), "AACGTT");  // palindrome
  const auto dna2 = NucleotideSequence::parse(SeqKind::Dna, "AAACCC");
  EXPECT_EQ(dna2.reverse_complement().to_string(), "GGGTTT");
}

TEST(NucleotideSequence, ReverseComplementInvolution) {
  const auto dna = NucleotideSequence::parse(SeqKind::Dna, "ATGCGTATCCGAT");
  EXPECT_EQ(dna.reverse_complement().reverse_complement(), dna);
}

TEST(NucleotideSequence, Subsequence) {
  const auto dna = NucleotideSequence::parse(SeqKind::Dna, "ATGCGT");
  EXPECT_EQ(dna.subsequence(1, 3).to_string(), "TGC");
  EXPECT_EQ(dna.subsequence(4, 10).to_string(), "GT");  // clamped
  EXPECT_TRUE(dna.subsequence(10, 2).empty());
}

TEST(NucleotideSequence, AppendConcatenates) {
  auto a = NucleotideSequence::parse(SeqKind::Dna, "AT");
  const auto b = NucleotideSequence::parse(SeqKind::Dna, "GC");
  a.append(b);
  EXPECT_EQ(a.to_string(), "ATGC");
}

TEST(NucleotideSequence, IndexWriteAccess) {
  auto seq = NucleotideSequence::parse(SeqKind::Dna, "AAAA");
  seq[2] = Nucleotide::G;
  EXPECT_EQ(seq.to_string(), "AAGA");
}

TEST(ProteinSequence, ParseRoundTrip) {
  const auto p = ProteinSequence::parse("MFSR*");
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.to_string(), "MFSR*");
  EXPECT_EQ(p[0], AminoAcid::Met);
  EXPECT_EQ(p[4], AminoAcid::Stop);
}

TEST(ProteinSequence, ParseRejectsInvalid) {
  EXPECT_THROW(ProteinSequence::parse("MFX"), std::invalid_argument);
}

TEST(ProteinSequence, ParseSkipsWhitespace) {
  EXPECT_EQ(ProteinSequence::parse("MF SR\n").size(), 4u);
}

TEST(ProteinSequence, Subsequence) {
  const auto p = ProteinSequence::parse("MFSRW");
  EXPECT_EQ(p.subsequence(1, 2).to_string(), "FS");
  EXPECT_EQ(p.subsequence(3, 99).to_string(), "RW");
  EXPECT_TRUE(p.subsequence(9, 1).empty());
}

TEST(ProteinSequence, PushBack) {
  ProteinSequence p;
  p.push_back(AminoAcid::Met);
  p.push_back(AminoAcid::Trp);
  EXPECT_EQ(p.to_string(), "MW");
}

TEST(ProteinSequence, Equality) {
  EXPECT_EQ(ProteinSequence::parse("MF"), ProteinSequence::parse("MF"));
  EXPECT_NE(ProteinSequence::parse("MF"), ProteinSequence::parse("FM"));
}

}  // namespace
}  // namespace fabp::bio
