#include "fabp/bio/fasta.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fabp::bio {
namespace {

TEST(Fasta, ReadsSingleRecord) {
  std::istringstream in{">seq1 a description\nACGT\nACGT\n"};
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, "seq1");
  EXPECT_EQ(records[0].description, "a description");
  EXPECT_EQ(records[0].sequence, "ACGTACGT");
}

TEST(Fasta, ReadsMultipleRecords) {
  std::istringstream in{">a\nAC\n>b desc\nGT\nGT\n>c\n\n"};
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].sequence, "AC");
  EXPECT_EQ(records[1].sequence, "GTGT");
  EXPECT_EQ(records[2].sequence, "");
}

TEST(Fasta, HeaderWithoutDescription) {
  std::istringstream in{">only_id\nAA\n"};
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, "only_id");
  EXPECT_TRUE(records[0].description.empty());
}

TEST(Fasta, HandlesCrLf) {
  std::istringstream in{">x\r\nACGT\r\n"};
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "ACGT");
}

TEST(Fasta, RejectsLeadingSequence) {
  std::istringstream in{"ACGT\n>x\nAC\n"};
  EXPECT_THROW(read_fasta(in), std::runtime_error);
}

TEST(Fasta, EmptyStreamYieldsNothing) {
  std::istringstream in{""};
  EXPECT_TRUE(read_fasta(in).empty());
}

TEST(Fasta, WriteWrapsLines) {
  std::ostringstream out;
  write_fasta(out, {FastaRecord{"id", "d", "AAAAABBBBBCC"}}, 5);
  EXPECT_EQ(out.str(), ">id d\nAAAAA\nBBBBB\nCC\n");
}

TEST(Fasta, WriteReadRoundTrip) {
  const std::vector<FastaRecord> records{
      FastaRecord{"r1", "first", std::string(200, 'A')},
      FastaRecord{"r2", "", "MFSRW"},
  };
  std::stringstream buffer;
  write_fasta(buffer, records);
  const auto parsed = read_fasta(buffer);
  EXPECT_EQ(parsed, records);
}

TEST(Fasta, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/fabp_fasta_test.fa";
  const std::vector<FastaRecord> records{FastaRecord{"g", "x y", "ACGTACGT"}};
  write_fasta_file(path, records);
  EXPECT_EQ(read_fasta_file(path), records);
  std::remove(path.c_str());
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/nope.fa"), std::runtime_error);
}

// ---- malformed-input pack + hardening options -------------------------

TEST(Fasta, HeaderOnlyFileYieldsEmptySequence) {
  std::istringstream in{">lonely header with words\n"};
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, "lonely");
  EXPECT_TRUE(records[0].sequence.empty());
}

TEST(Fasta, EmptyRecordsBetweenHeaders) {
  std::istringstream in{">a\n>b\n>c\nAC\n"};
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].sequence.empty());
  EXPECT_TRUE(records[1].sequence.empty());
  EXPECT_EQ(records[2].sequence, "AC");
}

TEST(Fasta, CrLfEverywhereIncludingBlankLines) {
  std::istringstream in{">x desc\r\n\r\nAC\r\nGT\r\n\r\n>y\r\nTT\r\n"};
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[0].description, "desc");
  EXPECT_EQ(records[1].sequence, "TT");
}

TEST(Fasta, FoldCaseUppercasesSequenceOnly) {
  std::istringstream in{">MixedCase keep\nacgtACGT\nnnn\n"};
  const auto records = read_fasta(in, FastaReadOptions{.fold_case = true});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].id, "MixedCase");  // headers untouched
  EXPECT_EQ(records[0].sequence, "ACGTACGTNNN");
}

TEST(Fasta, BinaryGarbagePassesByDefault) {
  // Historical behaviour: raw bytes flow through (typed parsers decide).
  std::istringstream in{std::string{">x\nAC\x01\x02GT\n"}};
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence.size(), 6u);
}

TEST(Fasta, RejectControlCatchesBinaryGarbage) {
  std::string blob = ">x\nACGT\n";
  blob += std::string{"\x7f\x00\x01GT\n", 6};
  std::istringstream in{blob};
  try {
    read_fasta(in, FastaReadOptions{.reject_control = true});
    FAIL() << "binary garbage must be rejected";
  } catch (const std::runtime_error& e) {
    // Error message pinpoints the offending line.
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
  }
}

TEST(Fasta, RejectControlAcceptsCleanInput) {
  std::istringstream in{">x\nacgtN-*\n"};
  const auto records = read_fasta(
      in, FastaReadOptions{.fold_case = true, .reject_control = true});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "ACGTN-*");
}

TEST(Fasta, GarbageBeforeHeaderStillRejected) {
  std::istringstream binary{std::string{"\x89PNG\r\n>x\nAC\n", 12}};
  EXPECT_THROW(read_fasta(binary), std::runtime_error);
}

}  // namespace
}  // namespace fabp::bio
