#include "fabp/bio/alphabet.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

namespace fabp::bio {
namespace {

TEST(Nucleotide, PaperTwoBitCodes) {
  // §III-B / Fig. 5(b): A=00, C=01, G=10, U=11.
  EXPECT_EQ(code(Nucleotide::A), 0b00);
  EXPECT_EQ(code(Nucleotide::C), 0b01);
  EXPECT_EQ(code(Nucleotide::G), 0b10);
  EXPECT_EQ(code(Nucleotide::U), 0b11);
}

TEST(Nucleotide, CodeRoundTrip) {
  for (Nucleotide n : kAllNucleotides)
    EXPECT_EQ(nucleotide_from_code(code(n)), n);
}

TEST(Nucleotide, CharConversionRna) {
  EXPECT_EQ(to_char_rna(Nucleotide::A), 'A');
  EXPECT_EQ(to_char_rna(Nucleotide::C), 'C');
  EXPECT_EQ(to_char_rna(Nucleotide::G), 'G');
  EXPECT_EQ(to_char_rna(Nucleotide::U), 'U');
}

TEST(Nucleotide, CharConversionDna) {
  EXPECT_EQ(to_char_dna(Nucleotide::U), 'T');
  EXPECT_EQ(to_char_dna(Nucleotide::A), 'A');
}

TEST(Nucleotide, ParseAcceptsBothTAndU) {
  EXPECT_EQ(nucleotide_from_char('T'), Nucleotide::U);
  EXPECT_EQ(nucleotide_from_char('U'), Nucleotide::U);
  EXPECT_EQ(nucleotide_from_char('t'), Nucleotide::U);
  EXPECT_EQ(nucleotide_from_char('a'), Nucleotide::A);
  EXPECT_EQ(nucleotide_from_char('X'), std::nullopt);
  EXPECT_EQ(nucleotide_from_char('\0'), std::nullopt);
}

TEST(Nucleotide, ComplementPairs) {
  EXPECT_EQ(complement(Nucleotide::A), Nucleotide::U);
  EXPECT_EQ(complement(Nucleotide::U), Nucleotide::A);
  EXPECT_EQ(complement(Nucleotide::C), Nucleotide::G);
  EXPECT_EQ(complement(Nucleotide::G), Nucleotide::C);
}

TEST(Nucleotide, ComplementIsInvolution) {
  for (Nucleotide n : kAllNucleotides)
    EXPECT_EQ(complement(complement(n)), n);
}

TEST(AminoAcid, CountAndIndexing) {
  EXPECT_EQ(kAminoAcidCount, 21u);
  for (std::size_t i = 0; i < kAminoAcidCount; ++i)
    EXPECT_EQ(index(kAllAminoAcids[i]), i);
}

TEST(AminoAcid, OneLetterRoundTrip) {
  for (AminoAcid aa : kAllAminoAcids) {
    const char c = to_char(aa);
    EXPECT_EQ(amino_acid_from_char(c), aa) << c;
  }
}

TEST(AminoAcid, CaseInsensitiveParse) {
  EXPECT_EQ(amino_acid_from_char('m'), AminoAcid::Met);
  EXPECT_EQ(amino_acid_from_char('M'), AminoAcid::Met);
  EXPECT_EQ(amino_acid_from_char('*'), AminoAcid::Stop);
}

TEST(AminoAcid, RejectsNonResidueLetters) {
  // B, J, O, U, X, Z are not in the 20+Stop alphabet here.
  for (char c : {'B', 'J', 'O', 'U', 'X', 'Z', '1', ' '})
    EXPECT_EQ(amino_acid_from_char(c), std::nullopt) << c;
}

TEST(AminoAcid, ThreeLetterCodes) {
  EXPECT_EQ(to_three_letter(AminoAcid::Met), "Met");
  EXPECT_EQ(to_three_letter(AminoAcid::Phe), "Phe");
  EXPECT_EQ(to_three_letter(AminoAcid::Stop), "Ter");
  // All 21 distinct.
  std::set<std::string_view> seen;
  for (AminoAcid aa : kAllAminoAcids) seen.insert(to_three_letter(aa));
  EXPECT_EQ(seen.size(), kAminoAcidCount);
}

TEST(AminoAcid, OneLetterCodesDistinct) {
  std::set<char> seen;
  for (AminoAcid aa : kAllAminoAcids) seen.insert(to_char(aa));
  EXPECT_EQ(seen.size(), kAminoAcidCount);
}

}  // namespace
}  // namespace fabp::bio
