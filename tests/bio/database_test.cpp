#include "fabp/bio/database.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "fabp/bio/generate.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::bio {
namespace {

TEST(ReferenceDatabase, EmptyDatabase) {
  ReferenceDatabase db;
  EXPECT_EQ(db.record_count(), 0u);
  EXPECT_EQ(db.total_bases(), 0u);
  EXPECT_FALSE(db.locate(0).has_value());
}

TEST(ReferenceDatabase, SingleRecordRoundTrip) {
  util::Xoshiro256 rng{701};
  const NucleotideSequence seq = random_dna(500, rng);
  ReferenceDatabase db;
  const std::size_t idx = db.add("chr1", seq);
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(db.record_count(), 1u);
  EXPECT_EQ(db.name(0), "chr1");
  EXPECT_EQ(db.record_length(0), 500u);
  EXPECT_EQ(db.total_bases(), 500u);
  // Packed store holds the record plus the guard.
  EXPECT_EQ(db.packed().size(), 500u + ReferenceDatabase::kGuardElements);
  for (std::size_t i = 0; i < 500; ++i)
    EXPECT_EQ(db.packed().get(i), seq[i]);
}

TEST(ReferenceDatabase, LocateMapsGlobalToRecord) {
  util::Xoshiro256 rng{703};
  ReferenceDatabase db;
  db.add("a", random_dna(100, rng));
  db.add("b", random_dna(200, rng));

  const auto a0 = db.locate(0);
  ASSERT_TRUE(a0);
  EXPECT_EQ(a0->record, 0u);
  EXPECT_EQ(a0->offset, 0u);

  const auto a99 = db.locate(99);
  ASSERT_TRUE(a99);
  EXPECT_EQ(a99->record, 0u);
  EXPECT_EQ(a99->offset, 99u);

  // Inside the guard between a and b: no record.
  EXPECT_FALSE(db.locate(100).has_value());
  EXPECT_FALSE(
      db.locate(100 + ReferenceDatabase::kGuardElements - 1).has_value());

  const std::size_t b_begin = 100 + ReferenceDatabase::kGuardElements;
  const auto b0 = db.locate(b_begin);
  ASSERT_TRUE(b0);
  EXPECT_EQ(b0->record, 1u);
  EXPECT_EQ(b0->offset, 0u);
  const auto b_last = db.locate(b_begin + 199);
  ASSERT_TRUE(b_last);
  EXPECT_EQ(b_last->offset, 199u);
  EXPECT_FALSE(db.locate(b_begin + 200).has_value());
}

TEST(ReferenceDatabase, WindowWithinRecord) {
  util::Xoshiro256 rng{709};
  ReferenceDatabase db;
  db.add("a", random_dna(100, rng));
  db.add("b", random_dna(100, rng));
  EXPECT_TRUE(db.window_within_record(0, 100));
  EXPECT_FALSE(db.window_within_record(1, 100));   // runs past record end
  EXPECT_FALSE(db.window_within_record(100, 10));  // starts in the guard
  EXPECT_FALSE(db.window_within_record(0, 0));
  const std::size_t b_begin = 100 + ReferenceDatabase::kGuardElements;
  EXPECT_TRUE(db.window_within_record(b_begin + 50, 50));
}

TEST(ReferenceDatabase, FromFasta) {
  const std::vector<FastaRecord> records{
      FastaRecord{"r1", "", "ACGTACGT"},
      FastaRecord{"r2", "desc", "GGGCCC"},
  };
  const ReferenceDatabase db = ReferenceDatabase::from_fasta(records);
  EXPECT_EQ(db.record_count(), 2u);
  EXPECT_EQ(db.name(1), "r2");
  EXPECT_EQ(db.record_length(0), 8u);
  EXPECT_EQ(db.total_bases(), 14u);
}

TEST(ReferenceDatabase, FromFastaRejectsNonNucleotide) {
  EXPECT_THROW(
      ReferenceDatabase::from_fasta({FastaRecord{"p", "", "MKWV"}}),
      std::invalid_argument);
}

TEST(ReferenceDatabase, FromFastaLenientHandlesNs) {
  // Real NCBI nt records contain N runs; lenient mode packs them and
  // reports the substitution count.
  const ReferenceDatabase db = ReferenceDatabase::from_fasta(
      {FastaRecord{"contig", "", "ACGTNNNNACGT"}}, /*lenient=*/true);
  EXPECT_EQ(db.record_length(0), 12u);
  EXPECT_EQ(db.ambiguous_bases(), 4u);
  // Ns decode as A (the documented first-compatible substitution).
  EXPECT_EQ(db.packed().get(4), Nucleotide::A);
}

TEST(ReferenceDatabase, GuardsDecodeAsA) {
  util::Xoshiro256 rng{719};
  ReferenceDatabase db;
  db.add("a", random_dna(10, rng));
  for (std::size_t i = 10; i < 10 + ReferenceDatabase::kGuardElements; ++i)
    EXPECT_EQ(db.packed().get(i), Nucleotide::A);
}

TEST(ReferenceDatabase, SaveLoadRoundTrip) {
  util::Xoshiro256 rng{733};
  ReferenceDatabase db;
  db.add("alpha", random_dna(300, rng));
  db.add("beta with spaces", random_dna(450, rng));
  db.add("", random_dna(1, rng));  // empty name, tiny record

  std::stringstream buffer;
  db.save(buffer);
  const ReferenceDatabase loaded = ReferenceDatabase::load(buffer);

  EXPECT_EQ(loaded.record_count(), db.record_count());
  EXPECT_EQ(loaded.total_bases(), db.total_bases());
  for (std::size_t r = 0; r < db.record_count(); ++r) {
    EXPECT_EQ(loaded.name(r), db.name(r));
    EXPECT_EQ(loaded.record_length(r), db.record_length(r));
  }
  EXPECT_EQ(loaded.packed(), db.packed());
}

TEST(ReferenceDatabase, SaveLoadFile) {
  util::Xoshiro256 rng{739};
  ReferenceDatabase db;
  db.add("chr", random_dna(1000, rng));
  const std::string path = testing::TempDir() + "/fabp_db_test.bin";
  db.save_file(path);
  const ReferenceDatabase loaded = ReferenceDatabase::load_file(path);
  EXPECT_EQ(loaded.packed(), db.packed());
  std::remove(path.c_str());
}

TEST(ReferenceDatabase, LoadRejectsGarbage) {
  std::stringstream bad{"not a database"};
  EXPECT_THROW(ReferenceDatabase::load(bad), std::runtime_error);
  std::stringstream truncated{std::string{"FABPDB1\n"}};
  EXPECT_THROW(ReferenceDatabase::load(truncated), std::runtime_error);
}

namespace {
// A serialized single-record database for the malformed-stream pack.
std::string serialized_db() {
  util::Xoshiro256 rng{751};
  ReferenceDatabase db;
  db.add("contig", random_dna(200, rng));
  std::stringstream buffer;
  db.save(buffer);
  return buffer.str();
}

void expect_load_error(const std::string& blob, const char* needle) {
  std::stringstream in{blob};
  try {
    ReferenceDatabase::load(in);
    FAIL() << "expected load to reject: " << needle;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
        << "got: " << e.what();
  }
}
}  // namespace

TEST(ReferenceDatabase, LoadRejectsBadMagicPreciseMessage) {
  std::string blob = serialized_db();
  blob[0] ^= 0x20;  // corrupt the magic
  expect_load_error(blob, "bad magic");
}

TEST(ReferenceDatabase, LoadRejectsTruncationAtEveryPrefix) {
  // Every proper prefix beyond the magic must fail as a truncated stream
  // (never crash, never return a half-parsed database).  Step through a
  // spread of cut points including mid-word positions.
  const std::string blob = serialized_db();
  for (std::size_t cut = 8; cut < blob.size(); cut += 7) {
    std::stringstream in{blob.substr(0, cut)};
    EXPECT_THROW(ReferenceDatabase::load(in), std::runtime_error)
        << "cut=" << cut;
  }
}

TEST(ReferenceDatabase, LoadRejectsImplausibleNameLength) {
  // Patch the record-name length field (right after magic + record count)
  // to something absurd, as a fuzzer or bit rot would.
  std::string blob = serialized_db();
  const std::size_t name_len_at = 8 + 8;  // magic, n_records
  for (std::size_t b = 0; b < 8; ++b)
    blob[name_len_at + b] = static_cast<char>(0xFF);
  expect_load_error(blob, "implausible name length");
}

TEST(ReferenceDatabase, LoadRejectsOutOfBoundsRecord) {
  // Grow the record's length field so it runs past the packed store.
  std::string blob = serialized_db();
  const std::size_t length_at = 8 + 8 + 8 + 6 + 8;  // ... name, begin
  blob[length_at] = static_cast<char>(0xFF);
  blob[length_at + 1] = static_cast<char>(0xFF);
  expect_load_error(blob, "record out of bounds");
}

TEST(ReferenceDatabase, LoadMissingFileThrows) {
  EXPECT_THROW(ReferenceDatabase::load_file("/nonexistent/db.bin"),
               std::runtime_error);
}

TEST(ReferenceDatabase, ConcatenatedMatchesPacked) {
  util::Xoshiro256 rng{727};
  ReferenceDatabase db;
  db.add("a", random_dna(77, rng));
  db.add("b", random_dna(33, rng));
  const NucleotideSequence cat = db.concatenated();
  EXPECT_EQ(cat.size(), db.packed().size());
  for (std::size_t i = 0; i < cat.size(); ++i)
    EXPECT_EQ(cat[i], db.packed().get(i));
}

}  // namespace
}  // namespace fabp::bio
