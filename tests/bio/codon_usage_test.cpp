#include "fabp/bio/codon_usage.hpp"

#include <gtest/gtest.h>

#include <map>

#include "fabp/bio/generate.hpp"
#include "fabp/bio/translation.hpp"

namespace fabp::bio {
namespace {

Codon codon(const char* text) {
  return Codon{*nucleotide_from_char(text[0]), *nucleotide_from_char(text[1]),
               *nucleotide_from_char(text[2])};
}

TEST(CodonUsage, UniformWeightsSumToOnePerAminoAcid) {
  const CodonUsage u = CodonUsage::uniform();
  for (AminoAcid aa : kAllAminoAcids) {
    double total = 0;
    for (const Codon& c : codons_for(aa)) total += u.weight(c);
    EXPECT_NEAR(total, 1.0, 1e-9) << to_three_letter(aa);
  }
}

TEST(CodonUsage, TablesCoverEveryCodon) {
  for (const CodonUsage* usage : {&CodonUsage::human(),
                                  &CodonUsage::ecoli()}) {
    for (AminoAcid aa : kAllAminoAcids) {
      double total = 0;
      for (const Codon& c : codons_for(aa)) total += usage->weight(c);
      EXPECT_NEAR(total, 1.0, 0.03) << to_three_letter(aa);
    }
  }
}

TEST(CodonUsage, KnownBiases) {
  const CodonUsage& human = CodonUsage::human();
  // Human Leu: CUG dominates; UUA is rare.
  EXPECT_GT(human.weight(codon("CUG")), human.weight(codon("UUA")) * 3);
  // Human Ala: GCC > GCG.
  EXPECT_GT(human.weight(codon("GCC")), human.weight(codon("GCG")));

  const CodonUsage& ecoli = CodonUsage::ecoli();
  // E. coli Arg: CGU/CGC strongly preferred over AGG.
  EXPECT_GT(ecoli.weight(codon("CGU")), ecoli.weight(codon("AGG")) * 5);
  // E. coli Lys: AAA preferred.
  EXPECT_GT(ecoli.weight(codon("AAA")), ecoli.weight(codon("AAG")));
}

TEST(CodonUsage, RscuCentersAtOne) {
  const CodonUsage u = CodonUsage::uniform();
  for (std::uint8_t i = 0; i < kCodonCount; ++i)
    EXPECT_NEAR(u.rscu(Codon::from_dense_index(i)), 1.0, 1e-9);
  // Human CUG has RSCU > 1 (over-used), CUA < 1.
  EXPECT_GT(CodonUsage::human().rscu(codon("CUG")), 1.5);
  EXPECT_LT(CodonUsage::human().rscu(codon("CUA")), 0.7);
}

TEST(CodonUsage, SampleRespectsWeights) {
  util::Xoshiro256 rng{931};
  const CodonUsage& human = CodonUsage::human();
  std::map<std::uint8_t, int> counts;
  constexpr int kDraws = 30'000;
  for (int i = 0; i < kDraws; ++i)
    counts[human.sample(AminoAcid::Leu, rng).dense_index()]++;
  const double cug = counts[codon("CUG").dense_index()];
  const double uua = counts[codon("UUA").dense_index()];
  EXPECT_NEAR(cug / kDraws, 0.40, 0.02);
  EXPECT_NEAR(uua / kDraws, 0.08, 0.02);
}

TEST(CodonUsage, SampleAlwaysSynonymous) {
  util::Xoshiro256 rng{937};
  for (AminoAcid aa : kAllAminoAcids)
    for (int i = 0; i < 50; ++i)
      EXPECT_EQ(translate(CodonUsage::human().sample(aa, rng)), aa);
}

TEST(CodonUsage, BiasedCodingSequenceTranslatesBack) {
  util::Xoshiro256 rng{941};
  const ProteinSequence protein = random_protein(120, rng);
  const NucleotideSequence coding =
      biased_coding_sequence(protein, CodonUsage::human(), rng);
  EXPECT_EQ(translate(coding), protein);
}

TEST(CodonUsage, HumanSerineAgyFractionMatters) {
  // ~39% of human Ser codons are AGY — the codons FabP's template drops.
  util::Xoshiro256 rng{947};
  int agy = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    const Codon c = CodonUsage::human().sample(AminoAcid::Ser, rng);
    if (c.first == Nucleotide::A) ++agy;
  }
  EXPECT_NEAR(static_cast<double>(agy) / kDraws, 0.39, 0.03);
}

TEST(CodonUsage, FromFractionsValidation) {
  const CodonUsage::Fraction bad_len[] = {{"AU", 1.0}};
  EXPECT_THROW(CodonUsage::from_fractions(bad_len), std::invalid_argument);
  const CodonUsage::Fraction bad_char[] = {{"AXG", 1.0}};
  EXPECT_THROW(CodonUsage::from_fractions(bad_char), std::invalid_argument);
  const CodonUsage::Fraction ok[] = {{"AUG", 1.0}};
  const CodonUsage u = CodonUsage::from_fractions(ok);
  EXPECT_DOUBLE_EQ(u.weight(codon("AUG")), 1.0);
  EXPECT_DOUBLE_EQ(u.weight(codon("UUU")), 0.0);
}

}  // namespace
}  // namespace fabp::bio
