#include "fabp/bio/codon.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace fabp::bio {
namespace {

Codon codon(const char* text) {
  return Codon{*nucleotide_from_char(text[0]), *nucleotide_from_char(text[1]),
               *nucleotide_from_char(text[2])};
}

TEST(Codon, DenseIndexRoundTrip) {
  for (std::uint8_t i = 0; i < kCodonCount; ++i) {
    const Codon c = Codon::from_dense_index(i);
    EXPECT_EQ(c.dense_index(), i);
  }
}

TEST(Codon, DenseIndicesDistinct) {
  std::set<std::uint8_t> seen;
  for (std::uint8_t i = 0; i < kCodonCount; ++i)
    seen.insert(Codon::from_dense_index(i).dense_index());
  EXPECT_EQ(seen.size(), kCodonCount);
}

TEST(Codon, ToString) {
  EXPECT_EQ(codon("AUG").to_string(), "AUG");
  EXPECT_EQ(codon("UUU").to_string(), "UUU");
}

TEST(Codon, SubscriptOperator) {
  const Codon c = codon("ACG");
  EXPECT_EQ(c[0], Nucleotide::A);
  EXPECT_EQ(c[1], Nucleotide::C);
  EXPECT_EQ(c[2], Nucleotide::G);
}

TEST(GeneticCode, CanonicalAssignments) {
  // Spot checks straight from the codon table (Fig. 2).
  EXPECT_EQ(translate(codon("AUG")), AminoAcid::Met);
  EXPECT_EQ(translate(codon("UGG")), AminoAcid::Trp);
  EXPECT_EQ(translate(codon("UUU")), AminoAcid::Phe);
  EXPECT_EQ(translate(codon("UUC")), AminoAcid::Phe);
  EXPECT_EQ(translate(codon("UAA")), AminoAcid::Stop);
  EXPECT_EQ(translate(codon("UAG")), AminoAcid::Stop);
  EXPECT_EQ(translate(codon("UGA")), AminoAcid::Stop);
  EXPECT_EQ(translate(codon("GCU")), AminoAcid::Ala);
  EXPECT_EQ(translate(codon("CGA")), AminoAcid::Arg);
  EXPECT_EQ(translate(codon("AGA")), AminoAcid::Arg);
  EXPECT_EQ(translate(codon("AGU")), AminoAcid::Ser);
  EXPECT_EQ(translate(codon("UCG")), AminoAcid::Ser);
  EXPECT_EQ(translate(codon("AUA")), AminoAcid::Ile);
  EXPECT_EQ(translate(codon("CUG")), AminoAcid::Leu);
  EXPECT_EQ(translate(codon("UUA")), AminoAcid::Leu);
}

TEST(GeneticCode, EveryCodonTranslates) {
  // All 64 codons map to one of the 21 symbols; counts match the standard
  // degeneracies.
  std::map<AminoAcid, int> counts;
  for (std::uint8_t i = 0; i < kCodonCount; ++i)
    counts[translate(Codon::from_dense_index(i))]++;
  int total = 0;
  for (const auto& [aa, n] : counts) total += n;
  EXPECT_EQ(total, 64);
  EXPECT_EQ(counts[AminoAcid::Met], 1);
  EXPECT_EQ(counts[AminoAcid::Trp], 1);
  EXPECT_EQ(counts[AminoAcid::Leu], 6);
  EXPECT_EQ(counts[AminoAcid::Arg], 6);
  EXPECT_EQ(counts[AminoAcid::Ser], 6);
  EXPECT_EQ(counts[AminoAcid::Stop], 3);
  EXPECT_EQ(counts[AminoAcid::Ile], 3);
  EXPECT_EQ(counts[AminoAcid::Ala], 4);
}

TEST(GeneticCode, BackTranslationConsistency) {
  // codons_for is the exact inverse of translate.
  for (AminoAcid aa : kAllAminoAcids) {
    for (const Codon& c : codons_for(aa)) EXPECT_EQ(translate(c), aa);
    EXPECT_EQ(degeneracy(aa), codons_for(aa).size());
  }
  std::size_t total = 0;
  for (AminoAcid aa : kAllAminoAcids) total += degeneracy(aa);
  EXPECT_EQ(total, kCodonCount);
}

TEST(GeneticCode, CodonsForReturnsSortedDense) {
  for (AminoAcid aa : kAllAminoAcids) {
    const auto codons = codons_for(aa);
    for (std::size_t i = 1; i < codons.size(); ++i)
      EXPECT_LT(codons[i - 1].dense_index(), codons[i].dense_index());
  }
}

TEST(GeneticCode, StartStopPredicates) {
  EXPECT_TRUE(is_start(codon("AUG")));
  EXPECT_FALSE(is_start(codon("AUA")));
  EXPECT_TRUE(is_stop(codon("UAA")));
  EXPECT_TRUE(is_stop(codon("UGA")));
  EXPECT_FALSE(is_stop(codon("UGG")));
}

TEST(GeneticCode, PheExample) {
  // The paper's running example: Phe <- {UUU, UUC}.
  const auto codons = codons_for(AminoAcid::Phe);
  ASSERT_EQ(codons.size(), 2u);
  EXPECT_EQ(codons[0].to_string(), "UUC");  // dense order: C < U
  EXPECT_EQ(codons[1].to_string(), "UUU");
}

}  // namespace
}  // namespace fabp::bio
