#include "fabp/bio/mutation.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/util/stats.hpp"

namespace fabp::bio {
namespace {

TEST(Mutation, ZeroRatesAreIdentity) {
  util::Xoshiro256 rng{1};
  const NucleotideSequence seq = random_dna(500, rng);
  const MutationResult r = mutate(seq, MutationParams{0.0, 0.0}, rng);
  EXPECT_EQ(r.sequence, seq);
  EXPECT_EQ(r.summary.substitutions, 0u);
  EXPECT_EQ(r.summary.indel_events, 0u);
}

TEST(Mutation, SubstitutionsChangeBasesNotLength) {
  util::Xoshiro256 rng{2};
  const NucleotideSequence seq = random_dna(2000, rng);
  MutationParams p;
  p.substitution_rate = 0.1;
  const MutationResult r = mutate(seq, p, rng);
  EXPECT_EQ(r.sequence.size(), seq.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < seq.size(); ++i)
    if (seq[i] != r.sequence[i]) ++diffs;
  EXPECT_EQ(diffs, r.summary.substitutions);
  EXPECT_NEAR(static_cast<double>(diffs) / 2000.0, 0.1, 0.03);
}

TEST(Mutation, SubstitutionNeverKeepsBase) {
  // With rate 1.0 every base must change.
  util::Xoshiro256 rng{3};
  const NucleotideSequence seq = random_dna(300, rng);
  MutationParams p;
  p.substitution_rate = 1.0;
  const MutationResult r = mutate(seq, p, rng);
  for (std::size_t i = 0; i < seq.size(); ++i)
    EXPECT_NE(seq[i], r.sequence[i]) << i;
}

TEST(Mutation, InsertionGrowsSequence) {
  util::Xoshiro256 rng{4};
  const NucleotideSequence seq = random_dna(1000, rng);
  MutationParams p;
  p.indel_events_per_kb = 50.0;  // force many events
  p.insertion_fraction = 1.0;
  const MutationResult r = mutate(seq, p, rng);
  EXPECT_EQ(r.sequence.size(), seq.size() + r.summary.inserted_bases);
  EXPECT_GT(r.summary.indel_events, 0u);
  EXPECT_EQ(r.summary.deleted_bases, 0u);
}

TEST(Mutation, DeletionShrinksSequence) {
  util::Xoshiro256 rng{5};
  const NucleotideSequence seq = random_dna(1000, rng);
  MutationParams p;
  p.indel_events_per_kb = 50.0;
  p.insertion_fraction = 0.0;
  const MutationResult r = mutate(seq, p, rng);
  EXPECT_EQ(r.sequence.size(), seq.size() - r.summary.deleted_bases);
  EXPECT_GT(r.summary.deleted_bases, 0u);
  EXPECT_EQ(r.summary.inserted_bases, 0u);
}

TEST(Mutation, EmpiricalIndelRateMatchesPaper) {
  // Paper §IV-A (citing Neininger et al.): mean 0.09 indel events/kb.
  // Over many kb the empirical event rate should recover the parameter.
  util::Xoshiro256 rng{6};
  MutationParams p;
  p.indel_events_per_kb = 0.09;
  util::RunningStats events_per_kb;
  for (int trial = 0; trial < 400; ++trial) {
    const NucleotideSequence seq = random_dna(5000, rng);
    const MutationResult r = mutate(seq, p, rng);
    events_per_kb.add(static_cast<double>(r.summary.indel_events) / 5.0);
  }
  EXPECT_NEAR(events_per_kb.mean(), 0.09, 0.02);
}

TEST(Mutation, DeterministicGivenSeed) {
  const NucleotideSequence seq = [] {
    util::Xoshiro256 rng{7};
    return random_dna(500, rng);
  }();
  MutationParams p;
  p.substitution_rate = 0.05;
  p.indel_events_per_kb = 2.0;
  util::Xoshiro256 rng_a{8}, rng_b{8};
  const MutationResult a = mutate(seq, p, rng_a);
  const MutationResult b = mutate(seq, p, rng_b);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.summary.substitutions, b.summary.substitutions);
}

TEST(Mutation, EmptySequence) {
  util::Xoshiro256 rng{9};
  MutationParams p;
  p.substitution_rate = 0.5;
  const MutationResult r = mutate(NucleotideSequence{SeqKind::Dna}, p, rng);
  EXPECT_TRUE(r.sequence.empty());
}

TEST(MutateProtein, RateZeroIdentity) {
  util::Xoshiro256 rng{10};
  const ProteinSequence p = random_protein(100, rng);
  EXPECT_EQ(mutate_protein(p, 0.0, rng), p);
}

TEST(MutateProtein, ChangesResidues) {
  util::Xoshiro256 rng{11};
  const ProteinSequence p = random_protein(500, rng);
  const ProteinSequence m = mutate_protein(p, 1.0, rng);
  ASSERT_EQ(m.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NE(m[i], p[i]);
    EXPECT_NE(m[i], AminoAcid::Stop);
  }
}

TEST(MutateProtein, StopsAreNeverMutated) {
  util::Xoshiro256 rng{12};
  ProteinSequence p;
  for (int i = 0; i < 50; ++i) p.push_back(AminoAcid::Stop);
  const ProteinSequence m = mutate_protein(p, 1.0, rng);
  EXPECT_EQ(m, p);
}

}  // namespace
}  // namespace fabp::bio
