// End-to-end service resilience suite (DESIGN.md §4f): deadline
// propagation over the wire, typed overload shedding with retry-after
// hints, malformed-frame hardening, partial-write/EINTR resume,
// slow-loris reaping, bounded drain with force-cancel, and the chaos
// runs — client-side attackers and server-side response faults — that
// prove the server never hangs and keeps serving healthy connections.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <thread>

#include "fabp/bio/generate.hpp"
#include "fabp/core/engine.hpp"
#include "fabp/net/client.hpp"
#include "fabp/net/fault.hpp"
#include "fabp/net/loadgen.hpp"
#include "fabp/net/server.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::net {
namespace {

using namespace std::chrono_literals;

Socket connect_local(std::uint16_t port) {
  Socket sock{::socket(AF_INET, SOCK_STREAM, 0)};
  EXPECT_TRUE(sock.valid());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  return sock;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Engine + WireServer on port 0 with serve() on a background thread and
/// both configs injectable (the resilience knobs are the subject here).
struct Fixture {
  explicit Fixture(core::EngineConfig engine_config,
                   ServerConfig server_config = {})
      : engine{engine_config}, server{engine, std::move(server_config), [] {
                                 return std::string{"stats-body"};
                               }} {
    util::Xoshiro256 rng{321};
    engine.upload_reference(bio::random_dna(6000, rng));
    accept_thread = std::thread{[this] { server.serve(); }};
  }

  ~Fixture() {
    server.shutdown();
    accept_thread.join();
  }

  static core::EngineConfig engine_config(bool autostart = true,
                                          std::size_t workers = 2) {
    core::EngineConfig config;
    config.backend = core::BackendKind::HwSim;
    config.host.search_both_strands = true;
    config.workers = workers;
    config.autostart = autostart;
    return config;
  }

  /// Spin-waits for the engine admission queue to reach `depth` (the
  /// connection handler thread races the test thread).
  void wait_queue_depth(std::size_t depth) {
    for (int i = 0; i < 1000 && engine.queue_depth() < depth; ++i)
      std::this_thread::sleep_for(2ms);
    ASSERT_GE(engine.queue_depth(), depth);
  }

  core::Engine engine;
  WireServer server;
  std::thread accept_thread;
};

AlignRequest make_request(std::uint64_t id, std::string protein = "MKWVTFISLL",
                          std::uint32_t threshold = 18) {
  AlignRequest request;
  request.id = id;
  request.threshold = threshold;
  request.protein = std::move(protein);
  return request;
}

// --- deadline propagation ------------------------------------------------

TEST(Resilience, DeadlinePropagatesOverWire) {
  // Engine held closed: the request waits out its wire budget in the
  // queue, so the claim-time checkpoint must fail it with a typed
  // DeadlineExceeded response — never a hang, never a dropped frame.
  Fixture fx{Fixture::engine_config(/*autostart=*/false)};
  Socket conn = connect_local(fx.server.port());

  AlignRequest expiring = make_request(5);
  expiring.deadline_ms = 40;
  ASSERT_TRUE(write_frame(conn.fd(), encode(expiring)));
  fx.wait_queue_depth(1);
  std::this_thread::sleep_for(100ms);  // budget gone while queued
  fx.engine.start();

  std::string payload;
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  AlignResponse response;
  ASSERT_TRUE(decode(payload, response));
  EXPECT_EQ(response.id, 5u);
  EXPECT_EQ(response.status,
            static_cast<std::uint8_t>(core::ErrorCode::DeadlineExceeded));
  EXPECT_EQ(fx.engine.stats().expired, 1u);

  // A budget-free request on the same connection still completes.
  ASSERT_TRUE(write_frame(conn.fd(), encode(make_request(6))));
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  ASSERT_TRUE(decode(payload, response));
  EXPECT_TRUE(response.ok()) << response.error;
}

// --- overload shedding ---------------------------------------------------

TEST(Resilience, OverloadShedsTypedWithRetryHint) {
  ServerConfig server_config;
  server_config.shed_queue_depth = 4;
  server_config.max_inflight_per_connection = 16;
  Fixture fx{Fixture::engine_config(/*autostart=*/false), server_config};
  Socket conn = connect_local(fx.server.port());

  // Fill the admission queue to the shed threshold (engine held closed).
  for (std::uint64_t i = 0; i < 4; ++i)
    ASSERT_TRUE(write_frame(conn.fd(), encode(make_request(i))));
  fx.wait_queue_depth(4);

  // The fifth must be refused at the edge with a typed Overloaded and a
  // usable retry-after hint, *before* it ever reaches the queue.
  ASSERT_TRUE(write_frame(conn.fd(), encode(make_request(99))));
  for (int i = 0; i < 1000 && fx.server.metrics().shed == 0; ++i)
    std::this_thread::sleep_for(2ms);
  EXPECT_EQ(fx.server.metrics().shed, 1u);
  EXPECT_EQ(fx.engine.queue_depth(), 4u);

  fx.engine.start();
  std::string payload;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(read_frame(conn.fd(), payload));
    AlignResponse response;
    ASSERT_TRUE(decode(payload, response));
    EXPECT_EQ(response.id, i);
    EXPECT_TRUE(response.ok()) << response.error;
  }
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  AlignResponse refused;
  ASSERT_TRUE(decode(payload, refused));
  EXPECT_EQ(refused.id, 99u);
  EXPECT_EQ(refused.status,
            static_cast<std::uint8_t>(core::ErrorCode::Overloaded));
  EXPECT_GE(refused.retry_after_ms, 1u);
}

// --- malformed frames ----------------------------------------------------

TEST(Resilience, MalformedFramesNeverKillTheServer) {
  Fixture fx{Fixture::engine_config()};
  std::string payload;

  {  // zero-length frame: no type byte to dispatch on -> clean close
    Socket conn = connect_local(fx.server.port());
    ASSERT_TRUE(write_frame(conn.fd(), std::string_view{}));
    EXPECT_FALSE(read_frame(conn.fd(), payload));
  }
  {  // truncated length prefix, then EOF: server must not wait forever
    Socket conn = connect_local(fx.server.port());
    ASSERT_EQ(::send(conn.fd(), "\x08\x00", 2, MSG_NOSIGNAL), 2);
  }
  {  // length above the request bound: rejected before any allocation
    Socket conn = connect_local(fx.server.port());
    const char bogus[4] = {'\xff', '\xff', '\xff', '\xff'};
    ASSERT_EQ(::send(conn.fd(), bogus, sizeof bogus, MSG_NOSIGNAL), 4);
    EXPECT_FALSE(read_frame(conn.fd(), payload));
  }
  {  // garbage message tag -> dropped connection
    Socket conn = connect_local(fx.server.port());
    const char alien[2] = {'\x7f', static_cast<char>(kProtocolVersion)};
    ASSERT_TRUE(write_frame(conn.fd(), std::string_view{alien, 2}));
    EXPECT_FALSE(read_frame(conn.fd(), payload));
  }

  // The server took it all and keeps serving, hit-for-hit.
  util::Xoshiro256 rng{44};
  const auto query = bio::random_protein(10, rng);
  const auto threshold =
      static_cast<std::uint32_t>(query.size() * 3 * 55 / 100);
  auto expected = fx.engine.align_sync(query, threshold);
  ASSERT_TRUE(expected.has_value());
  Socket conn = connect_local(fx.server.port());
  ASSERT_TRUE(write_frame(
      conn.fd(), encode(make_request(7, query.to_string(), threshold))));
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  AlignResponse response;
  ASSERT_TRUE(decode(payload, response));
  EXPECT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(response.hits, expected->hits);
  EXPECT_GE(fx.server.metrics().malformed, 3u);
}

// --- partial writes and EINTR -------------------------------------------

TEST(Resilience, ShortWritesResumeAcrossTinySendBuffer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket writer_sock{fds[0]};
  Socket reader_sock{fds[1]};
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(writer_sock.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof tiny),
            0);

  std::string payload(512 * 1024, '\0');
  util::Xoshiro256 rng{7};
  for (char& ch : payload) ch = static_cast<char>('a' + rng.bounded(26));

  std::thread writer{[&] {
    // Far larger than SO_SNDBUF: ::send must return short repeatedly
    // and write_frame must keep resuming from the right offset.
    EXPECT_TRUE(write_frame(writer_sock.fd(), payload));
  }};
  std::this_thread::sleep_for(50ms);  // let the tiny buffer fill first
  std::string got;
  EXPECT_TRUE(read_frame(reader_sock.fd(), got));
  writer.join();
  EXPECT_EQ(got, payload);
}

TEST(Resilience, FrameIoResumesAfterEintr) {
  struct sigaction action{};
  action.sa_handler = [](int) {};  // no SA_RESTART: syscalls fail EINTR
  struct sigaction previous{};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket writer_sock{fds[0]};
  Socket reader_sock{fds[1]};
  const int tiny = 4096;
  ::setsockopt(writer_sock.fd(), SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny);

  std::string payload(256 * 1024, 'q');
  std::atomic<bool> writing{true};
  std::thread writer{[&] {
    EXPECT_TRUE(write_frame(writer_sock.fd(), payload));
    writing.store(false);
  }};
  // Pepper the writer with signals while its send buffer is full, so
  // blocked ::send calls wake with EINTR and must resume, not fail.
  for (int i = 0; i < 40 && writing.load(); ++i) {
    ::pthread_kill(writer.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(1ms);
  }
  std::string got;
  EXPECT_TRUE(read_frame(reader_sock.fd(), got));
  writer.join();
  EXPECT_EQ(got, payload);
  ::sigaction(SIGUSR1, &previous, nullptr);
}

// --- socket supervision --------------------------------------------------

TEST(Resilience, SlowLorisIsReapedByIoTimeout) {
  ServerConfig server_config;
  server_config.io_timeout_s = 0.2;
  Fixture fx{Fixture::engine_config(), server_config};

  // Two bytes of a length prefix, then silence: the classic slow loris.
  Socket conn = connect_local(fx.server.port());
  ASSERT_EQ(::send(conn.fd(), "\x10\x00", 2, MSG_NOSIGNAL), 2);
  const auto t0 = std::chrono::steady_clock::now();
  std::string payload;
  EXPECT_FALSE(read_frame(conn.fd(), payload));  // server reaps us
  EXPECT_LT(seconds_since(t0), 5.0);
  EXPECT_GE(fx.server.metrics().io_timeouts, 1u);

  // A well-behaved connection is untouched by the supervision.
  Socket good = connect_local(fx.server.port());
  ASSERT_TRUE(write_frame(good.fd(), encode(make_request(1))));
  ASSERT_TRUE(read_frame(good.fd(), payload));
}

TEST(Resilience, IdleConnectionsAreReapedWhenConfigured) {
  ServerConfig server_config;
  server_config.idle_timeout_s = 0.2;
  Fixture fx{Fixture::engine_config(), server_config};
  Socket conn = connect_local(fx.server.port());
  const auto t0 = std::chrono::steady_clock::now();
  std::string payload;
  EXPECT_FALSE(read_frame(conn.fd(), payload));  // reaped, not hung
  EXPECT_LT(seconds_since(t0), 5.0);
  EXPECT_GE(fx.server.metrics().io_timeouts, 1u);
}

// --- bounded drain -------------------------------------------------------

TEST(Resilience, DrainDeadlineForceCancelsQueuedRequests) {
  ServerConfig server_config;
  server_config.drain_timeout_s = 0.2;
  server_config.max_inflight_per_connection = 8;
  auto fx = std::make_unique<Fixture>(
      Fixture::engine_config(/*autostart=*/false), server_config);
  Socket conn = connect_local(fx->server.port());
  for (std::uint64_t i = 0; i < 3; ++i)
    ASSERT_TRUE(write_frame(conn.fd(), encode(make_request(i))));
  fx->wait_queue_depth(3);

  // The engine never starts, so a graceful drain cannot finish: the
  // drain deadline must fire and cancel the queued work instead of
  // hanging shutdown forever.
  const auto t0 = std::chrono::steady_clock::now();
  fx->server.shutdown();
  EXPECT_LT(seconds_since(t0), 4.0);
  EXPECT_EQ(fx->server.metrics().force_cancelled, 3u);
  fx.reset();  // joins serve(); hangs here = drain bug
}

// --- chaos ---------------------------------------------------------------

TEST(Resilience, AttackerConnectionsDoNotDisturbHealthyClients) {
  ServerConfig server_config;
  server_config.io_timeout_s = 1.0;
  server_config.shed_queue_depth = 64;
  Fixture fx{Fixture::engine_config(), server_config};

  LoadgenConfig load;
  load.port = fx.server.port();
  load.clients = 6;
  load.requests = 30;
  load.query_residues = 10;
  load.deadline_s = 30.0;
  load.retry.max_attempts = 6;
  load.faulty_fraction = 0.5;  // 3 of 6 connections attack
  load.fault.seed = 9;
  load.fault.corrupt_rate = 0.25;
  load.fault.truncate_rate = 0.15;
  load.fault.reset_rate = 0.10;
  load.fault.dup_rate = 0.10;
  load.fault.delay_rate = 0.05;
  load.fault.delay_ms = 2;
  const LoadgenReport report = run_loadgen(load);

  // Healthy clients ride through the storm: every request reaches a
  // typed terminal outcome and in fact completes (their connections
  // carry no faults; the attackers' damage stays on attacker sockets).
  EXPECT_EQ(report.attackers, 3u);
  EXPECT_GT(report.attack_frames, 0u);
  EXPECT_TRUE(report.all_terminal());
  EXPECT_EQ(report.completed, report.sent);
  EXPECT_EQ(report.resets, 0u);
  EXPECT_EQ(report.timeouts, 0u);

  // And the server still answers hit-for-hit after the chaos.
  util::Xoshiro256 rng{17};
  const auto query = bio::random_protein(10, rng);
  const auto threshold =
      static_cast<std::uint32_t>(query.size() * 3 * 55 / 100);
  auto expected = fx.engine.align_sync(query, threshold);
  ASSERT_TRUE(expected.has_value());
  Socket conn = connect_local(fx.server.port());
  ASSERT_TRUE(write_frame(
      conn.fd(), encode(make_request(1234, query.to_string(), threshold))));
  std::string payload;
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  AlignResponse response;
  ASSERT_TRUE(decode(payload, response));
  EXPECT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(response.hits, expected->hits);
  EXPECT_EQ(response.reverse_hits, expected->reverse_hits);
}

TEST(Resilience, ServerSideResponseFaultsAreSurvivedByRetries) {
  // Faults on the *response* path this time: every connection's replies
  // can be delayed, corrupted, duplicated, truncated or reset.  The
  // retrying client must converge to typed terminal outcomes for every
  // call — no hang, no crash — even though individual attempts keep
  // dying.  Since wire v3, corruption anywhere in a response body is
  // caught by the payload CRC and retried like a transport fault, so
  // every *accepted* response is bit-exact — the PR 9 gap where a
  // corrupted-but-decodable hit list slipped through is closed.
  ServerConfig server_config;
  server_config.fault.seed = 11;
  server_config.fault.corrupt_rate = 0.15;
  server_config.fault.truncate_rate = 0.10;
  server_config.fault.reset_rate = 0.05;
  server_config.fault.dup_rate = 0.10;
  server_config.fault.delay_rate = 0.05;
  server_config.fault.delay_ms = 2;
  Fixture fx{Fixture::engine_config(), server_config};

  auto expected = fx.engine.align_sync(
      bio::ProteinSequence::parse("MKWVTFISLL"), 18);
  ASSERT_TRUE(expected.has_value());

  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 1.0;
  policy.max_backoff_ms = 20.0;
  Client client{"127.0.0.1", fx.server.port(), policy, 1234};
  std::size_t ok = 0;
  std::size_t terminal = 0;
  std::size_t integrity = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < 20; ++i) {
    const CallResult outcome = client.align(make_request(i), 20.0);
    ++terminal;  // align() returned: by construction a typed outcome
    integrity += outcome.integrity_faults;
    if (outcome.ok()) {
      ++ok;
      EXPECT_EQ(outcome.response.hits, expected->hits);
      EXPECT_EQ(outcome.response.reverse_hits, expected->reverse_hits);
    }
  }
  EXPECT_EQ(terminal, 20u);
  EXPECT_GT(ok, 0u);  // retries do land completed calls through the storm
  EXPECT_GT(integrity, 0u);  // and the CRC did catch corrupted responses
  EXPECT_LT(seconds_since(t0), 100.0);
}

TEST(Resilience, CorruptedRequestStreamIsCaughtByPayloadCrc) {
  // The client's own outbound frames get corrupted in flight (satellite
  // of the §4f corrupt-stream plan, now pointed at the v3 payload CRC):
  // the server must answer a typed IntegrityFailure on a still-usable
  // connection, the client must classify it as an integrity fault and
  // retry, and no corrupted frame may ever be decoded as a request.
  Fixture fx{Fixture::engine_config()};

  util::Xoshiro256 rng{17};
  const auto query = bio::random_protein(10, rng);
  const auto threshold =
      static_cast<std::uint32_t>(query.size() * 3 * 55 / 100);
  auto expected = fx.engine.align_sync(query, threshold);
  ASSERT_TRUE(expected.has_value());

  FaultConfig fault;
  fault.seed = 21;
  fault.corrupt_rate = 0.5;  // half the outbound frames get a byte flip
  FaultInjector injector{fault, 1};
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 1.0;
  policy.max_backoff_ms = 10.0;
  Client client{"127.0.0.1", fx.server.port(), policy, 55, &injector};

  std::size_t ok = 0;
  std::size_t integrity = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const CallResult outcome = client.align(
        make_request(i, query.to_string(), threshold), 20.0);
    integrity += outcome.integrity_faults;
    if (outcome.ok()) {
      ++ok;
      // CRC-verified requests can only have been served verbatim.
      EXPECT_EQ(outcome.response.hits, expected->hits);
      EXPECT_EQ(outcome.response.reverse_hits, expected->reverse_hits);
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(integrity, 0u);
  EXPECT_GE(fx.server.metrics().integrity, 1u);
}

TEST(Resilience, ClientDeadlineBoundsAnUnresponsiveServer) {
  ServerConfig server_config;
  server_config.drain_timeout_s = 0.1;
  Fixture fx{Fixture::engine_config(/*autostart=*/false), server_config};

  RetryPolicy policy;
  policy.max_attempts = 3;
  Client client{"127.0.0.1", fx.server.port(), policy};
  const auto t0 = std::chrono::steady_clock::now();
  const CallResult outcome = client.align(make_request(1), 0.4);
  // The engine never runs the request, so no response ever comes: the
  // client must give up by its own deadline (+ scheduling grace), with
  // a typed transport-ish status — never a hang.
  EXPECT_LT(seconds_since(t0), 3.0);
  EXPECT_TRUE(outcome.status == CallStatus::Timeout ||
              outcome.status == CallStatus::Reset)
      << to_string(outcome.status);
}

// --- fault injector determinism -----------------------------------------

TEST(Resilience, FaultSchedulesAreReplayableFromSeed) {
  FaultConfig config;
  config.seed = 77;
  config.corrupt_rate = 0.3;
  config.truncate_rate = 0.2;
  config.reset_rate = 0.1;
  config.dup_rate = 0.2;
  config.delay_rate = 0.1;
  FaultInjector a{config, 3};
  FaultInjector b{config, 3};
  FaultInjector other_stream{config, 4};
  bool diverged = false;
  for (std::size_t frame = 0; frame < 64; ++frame) {
    const FramePlan pa = a.plan_frame(100 + frame);
    const FramePlan pb = b.plan_frame(100 + frame);
    EXPECT_EQ(pa.delay_ms, pb.delay_ms);
    EXPECT_EQ(pa.duplicate, pb.duplicate);
    EXPECT_EQ(pa.reset, pb.reset);
    EXPECT_EQ(pa.truncate_at, pb.truncate_at);
    EXPECT_EQ(pa.corrupt_offset, pb.corrupt_offset);
    EXPECT_EQ(pa.corrupt_mask, pb.corrupt_mask);
    const FramePlan pc = other_stream.plan_frame(100 + frame);
    diverged = diverged || pc.reset != pa.reset ||
               pc.truncate_at != pa.truncate_at ||
               pc.corrupt_offset != pa.corrupt_offset;
  }
  EXPECT_EQ(a.log(), b.log());
  EXPECT_TRUE(diverged);  // distinct streams draw distinct schedules
  EXPECT_FALSE(a.log().empty());
}

TEST(Resilience, DisabledInjectorPlansCleanFrames) {
  FaultInjector injector{FaultConfig{}, 0};
  EXPECT_FALSE(injector.config().enabled());
  for (std::size_t frame = 0; frame < 16; ++frame)
    EXPECT_TRUE(injector.plan_frame(64).clean());
  EXPECT_TRUE(injector.log().empty());
}

}  // namespace
}  // namespace fabp::net
