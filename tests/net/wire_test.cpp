#include "fabp/net/wire.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <thread>

#include "fabp/bio/generate.hpp"
#include "fabp/core/engine.hpp"
#include "fabp/net/loadgen.hpp"
#include "fabp/net/server.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::net {
namespace {

// --- pure protocol tests (no sockets) -----------------------------------

TEST(Wire, AlignRequestRoundTrip) {
  AlignRequest in;
  in.id = 0x0123456789abcdefULL;
  in.threshold = 42;
  in.deadline_ms = 1500;
  in.protein = "MFSRW";
  AlignRequest out;
  ASSERT_TRUE(decode(encode(in), out));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.threshold, in.threshold);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.protein, in.protein);
  EXPECT_EQ(peek_type(encode(in)), MessageType::AlignRequest);
}

TEST(Wire, AlignResponseRoundTrip) {
  AlignResponse in;
  in.id = 7;
  in.status = static_cast<std::uint8_t>(core::ErrorCode::Timeout);
  in.retry_after_ms = 250;
  in.server_seconds = 0.125;
  in.error = "watchdog";
  in.hits = {{0, 3}, {1234567890123ULL, 48}};
  in.reverse_hits = {{17, 9}};
  AlignResponse out;
  ASSERT_TRUE(decode(encode(in), out));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.retry_after_ms, in.retry_after_ms);
  EXPECT_EQ(out.server_seconds, in.server_seconds);
  EXPECT_EQ(out.error, in.error);
  EXPECT_EQ(out.hits, in.hits);
  EXPECT_EQ(out.reverse_hits, in.reverse_hits);
  EXPECT_FALSE(out.ok());
}

TEST(Wire, StatsRoundTrip) {
  EXPECT_EQ(peek_type(encode_stats_request()), MessageType::StatsRequest);
  StatsResponse in;
  in.text = "shard 0: healthy\nshard 1: degraded\n";
  StatsResponse out;
  ASSERT_TRUE(decode(encode(in), out));
  EXPECT_EQ(out.text, in.text);
}

TEST(Wire, RejectsTruncatedPayloads) {
  AlignResponse full;
  full.id = 9;
  full.hits = {{100, 5}};
  full.error = "e";
  const std::string payload = encode(full);
  // Every strict prefix must fail soft, never crash or mis-parse.
  for (std::size_t n = 0; n < payload.size(); ++n) {
    AlignResponse out;
    EXPECT_FALSE(decode(std::string_view{payload.data(), n}, out)) << n;
  }
}

TEST(Wire, RejectsAlienTypeVersionAndTrailingGarbage) {
  AlignRequest request;
  request.protein = "MK";
  std::string payload = encode(request);

  AlignResponse wrong_type;
  EXPECT_FALSE(decode(payload, wrong_type));  // request bytes as response

  std::string bad_version = payload;
  bad_version[1] = static_cast<char>(kProtocolVersion + 1);
  AlignRequest out;
  EXPECT_FALSE(decode(bad_version, out));

  std::string trailing = payload + "x";
  EXPECT_FALSE(decode(trailing, out));

  // A lying hit count larger than the remaining bytes must be rejected
  // before any allocation.
  AlignResponse response;
  std::string resp = encode(response);
  resp[resp.size() - 8] = static_cast<char>(0xff);  // forward hit count
  AlignResponse decoded;
  EXPECT_FALSE(decode(resp, decoded));
}

TEST(Wire, RequestLimitIsTighterThanResponseLimit) {
  // Queries are tiny; hit lists are not.  A request payload above the
  // 1 MiB inbound bound is rejected even if perfectly well-formed, while
  // responses may legitimately carry megabytes of hits.
  ASSERT_LT(kMaxRequestFrameBytes, kMaxFrameBytes);
  AlignRequest big;
  big.protein.assign(kMaxRequestFrameBytes, 'M');
  AlignRequest out;
  EXPECT_FALSE(decode(encode(big), out));

  AlignResponse hits;
  hits.hits.assign(200'000, core::Hit{1, 2});  // ~2.4 MB payload
  AlignResponse round;
  ASSERT_TRUE(decode(encode(hits), round));
  EXPECT_EQ(round.hits.size(), 200'000u);
}

TEST(Wire, FrameAddsLengthPrefixAndCrcTrailer) {
  // v3 layout: u32 body length (payload + 4 CRC bytes), payload, CRC32.
  const std::string framed = frame("abc");
  ASSERT_EQ(framed.size(), 11u);
  EXPECT_EQ(framed[0], 7);  // 3 payload bytes + 4 CRC bytes
  EXPECT_EQ(framed[1], 0);
  EXPECT_EQ(framed[2], 0);
  EXPECT_EQ(framed[3], 0);
  EXPECT_EQ(framed.substr(4, 3), "abc");

  std::string_view payload;
  ASSERT_TRUE(verify_frame_body(std::string_view{framed}.substr(4), payload));
  EXPECT_EQ(payload, "abc");
}

TEST(Wire, VerifyFrameBodyCatchesEveryOneByteCorruption) {
  AlignRequest request;
  request.id = 5;
  request.protein = "MKWV";
  request.database = "db-a";
  request.tenant = "team-1";
  const std::string framed = frame(encode(request));
  const std::string_view body = std::string_view{framed}.substr(4);

  std::string_view payload;
  ASSERT_TRUE(verify_frame_body(body, payload));

  // Flip each body byte in turn: the CRC must catch every single-bit
  // corruption, whether it lands in the payload or the trailer itself.
  for (std::size_t i = 0; i < body.size(); ++i) {
    std::string corrupted{body};
    corrupted[i] = static_cast<char>(
        static_cast<std::uint8_t>(corrupted[i]) ^ 0x40u);
    std::string_view out;
    EXPECT_FALSE(verify_frame_body(corrupted, out)) << "byte " << i;
  }

  // A body too short to even carry the trailer fails soft.
  EXPECT_FALSE(verify_frame_body(std::string_view{"abc"}, payload));
}

TEST(Wire, AlignRequestCarriesDatabaseAndTenant) {
  AlignRequest in;
  in.id = 11;
  in.threshold = 9;
  in.protein = "MKW";
  in.database = "genome-v2";
  in.tenant = "acme";
  AlignRequest out;
  ASSERT_TRUE(decode(encode(in), out));
  EXPECT_EQ(out.database, "genome-v2");
  EXPECT_EQ(out.tenant, "acme");
}

TEST(Wire, AlignResponseCarriesGeneration) {
  AlignResponse in;
  in.id = 3;
  in.generation = 42;
  AlignResponse out;
  ASSERT_TRUE(decode(encode(in), out));
  EXPECT_EQ(out.generation, 42u);
}

TEST(Wire, SwapDatabaseRoundTrip) {
  SwapDatabaseRequest in;
  in.name = "genome-v2";
  in.path = "/data/ref.fa";
  in.bases = "ACGTACGT";
  EXPECT_EQ(peek_type(encode(in)), MessageType::SwapDatabaseRequest);
  SwapDatabaseRequest out;
  ASSERT_TRUE(decode(encode(in), out));
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.path, in.path);
  EXPECT_EQ(out.bases, in.bases);

  SwapDatabaseResponse resp_in;
  resp_in.status = static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
  resp_in.generation = 7;
  resp_in.error = "no such file";
  SwapDatabaseResponse resp_out;
  ASSERT_TRUE(decode(encode(resp_in), resp_out));
  EXPECT_EQ(resp_out.status, resp_in.status);
  EXPECT_EQ(resp_out.generation, 7u);
  EXPECT_EQ(resp_out.error, resp_in.error);
  EXPECT_FALSE(resp_out.ok());
}

// --- end-to-end over localhost ------------------------------------------

Socket connect_local(std::uint16_t port) {
  Socket sock{::socket(AF_INET, SOCK_STREAM, 0)};
  EXPECT_TRUE(sock.valid());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  return sock;
}

/// Engine + WireServer on port 0 with serve() on a background thread;
/// shuts down and joins on destruction.  Sharded (2 cards) so the TCP
/// path exercises the full scatter/gather router.
struct ServerFixture {
  ServerFixture() : engine{make_config()}, server{engine, {}, [] {
                      return std::string{"stats-body"};
                    }} {
    util::Xoshiro256 rng{321};
    engine.upload_reference(bio::random_dna(6000, rng));
    accept_thread = std::thread{[this] { server.serve(); }};
  }

  ~ServerFixture() {
    server.shutdown();
    accept_thread.join();
  }

  static core::EngineConfig make_config() {
    core::EngineConfig config;
    config.backend = core::BackendKind::HwSim;
    config.host.search_both_strands = true;
    config.shard.shard_count = 2;
    return config;
  }

  core::Engine engine;
  WireServer server;
  std::thread accept_thread;
};

TEST(Server, AlignOverLocalhostMatchesAlignSync) {
  ServerFixture fx;
  util::Xoshiro256 rng{99};
  const auto query = bio::random_protein(12, rng);
  const auto threshold =
      static_cast<std::uint32_t>(query.size() * 3 * 55 / 100);
  auto expected = fx.engine.align_sync(query, threshold);
  ASSERT_TRUE(expected.has_value());

  Socket conn = connect_local(fx.server.port());
  AlignRequest request;
  request.id = 77;
  request.threshold = threshold;
  request.protein = query.to_string();
  ASSERT_TRUE(write_frame(conn.fd(), encode(request)));

  std::string payload;
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  AlignResponse response;
  ASSERT_TRUE(decode(payload, response));
  EXPECT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(response.id, 77u);
  EXPECT_EQ(response.hits, expected->hits);
  EXPECT_EQ(response.reverse_hits, expected->reverse_hits);
  EXPECT_GE(response.server_seconds, 0.0);
}

TEST(Server, BadProteinIsTypedErrorAndConnectionSurvives) {
  ServerFixture fx;
  Socket conn = connect_local(fx.server.port());

  AlignRequest bad;
  bad.id = 1;
  bad.threshold = 5;
  bad.protein = "NOT#APROTEIN!";
  ASSERT_TRUE(write_frame(conn.fd(), encode(bad)));
  std::string payload;
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  AlignResponse response;
  ASSERT_TRUE(decode(payload, response));
  EXPECT_EQ(response.status,
            static_cast<std::uint8_t>(core::ErrorCode::BadArgument));
  EXPECT_FALSE(response.error.empty());
  EXPECT_TRUE(response.hits.empty());

  // The connection stays usable after a rejected request.
  AlignRequest good;
  good.id = 2;
  good.threshold = 30;
  good.protein = "MKWVTFISLL";
  ASSERT_TRUE(write_frame(conn.fd(), encode(good)));
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  ASSERT_TRUE(decode(payload, response));
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(response.id, 2u);
}

TEST(Server, StatsRequestReturnsFormatterText) {
  ServerFixture fx;
  Socket conn = connect_local(fx.server.port());
  ASSERT_TRUE(write_frame(conn.fd(), encode_stats_request()));
  std::string payload;
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  StatsResponse stats;
  ASSERT_TRUE(decode(payload, stats));
  EXPECT_EQ(stats.text, "stats-body");
}

TEST(Server, LoadgenClosedLoopIsCleanAndCounted) {
  ServerFixture fx;
  LoadgenConfig config;
  config.port = fx.server.port();
  config.clients = 4;
  config.requests = 24;
  config.query_residues = 10;
  const LoadgenReport report = run_loadgen(config);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.sent, 24u);
  EXPECT_EQ(report.completed, 24u);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_GE(report.p99_ms, report.p50_ms);

  const ServerMetrics metrics = fx.server.metrics();
  EXPECT_EQ(metrics.requests, 24u);
  EXPECT_EQ(metrics.errors, 0u);
  EXPECT_GE(metrics.p99_ms, metrics.p50_ms);
}

TEST(Server, ShutdownDrainsWithIdleConnectionOpen) {
  auto fx = std::make_unique<ServerFixture>();
  // An idle connected client parked in the server's recv must not block
  // the drain: shutdown interrupts the read and joins the handler.
  Socket idle = connect_local(fx->server.port());
  fx->server.shutdown();
  fx.reset();  // joins serve(); hangs here = drain bug
  SUCCEED();
}

TEST(Server, OversizedFramePrefixDropsConnection) {
  ServerFixture fx;
  Socket conn = connect_local(fx.server.port());
  // 0xffffffff length prefix: the server must reject without allocating
  // and close; the client read then fails instead of hanging.
  const char bogus[4] = {'\xff', '\xff', '\xff', '\xff'};
  ASSERT_EQ(::send(conn.fd(), bogus, sizeof bogus, 0), 4);
  std::string payload;
  EXPECT_FALSE(read_frame(conn.fd(), payload));
}

TEST(Server, CorruptedFrameGetsTypedIntegrityErrorAndConnectionSurvives) {
  ServerFixture fx;
  Socket conn = connect_local(fx.server.port());

  AlignRequest request;
  request.id = 31;
  request.threshold = 30;
  request.protein = "MKWVTFISLL";
  std::string framed = frame(encode(request));
  framed[6] ^= 0x20;  // flip one payload byte after the length prefix
  ASSERT_EQ(::send(conn.fd(), framed.data(), framed.size(), 0),
            static_cast<ssize_t>(framed.size()));

  std::string payload;
  ASSERT_EQ(read_frame_status(conn.fd(), payload), FrameRead::Ok);
  AlignResponse response;
  ASSERT_TRUE(decode(payload, response));
  EXPECT_EQ(response.status,
            static_cast<std::uint8_t>(core::ErrorCode::IntegrityFailure));

  // The framing held, so the stream is still synchronized: the same
  // connection serves the uncorrupted resend.
  ASSERT_TRUE(write_frame(conn.fd(), encode(request)));
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  ASSERT_TRUE(decode(payload, response));
  EXPECT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(response.id, 31u);
  EXPECT_GT(response.generation, 0u);

  EXPECT_GE(fx.server.metrics().integrity, 1u);
}

TEST(Server, SwapDatabaseRoutesThroughHandler) {
  core::EngineConfig config = ServerFixture::make_config();
  core::Engine engine{config};
  util::Xoshiro256 rng{321};
  engine.upload_reference(bio::random_dna(6000, rng));
  WireServer server{
      engine, {}, {}, [&](const SwapDatabaseRequest& request) {
        SwapDatabaseResponse response;
        try {
          response.generation = engine.upload_database(
              request.name,
              bio::NucleotideSequence::parse(bio::SeqKind::Dna,
                                             request.bases));
        } catch (const std::exception& e) {
          response.status =
              static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
          response.error = e.what();
        }
        return response;
      }};
  std::thread accept_thread{[&] { server.serve(); }};

  Socket conn = connect_local(server.port());
  SwapDatabaseRequest swap;
  swap.name = "fresh";
  swap.bases = "ACGTACGTACGTACGTACGTACGTACGTACGT";
  ASSERT_TRUE(write_frame(conn.fd(), encode(swap)));
  std::string payload;
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  SwapDatabaseResponse response;
  ASSERT_TRUE(decode(payload, response));
  EXPECT_TRUE(response.ok()) << response.error;
  EXPECT_GT(response.generation, 0u);
  EXPECT_TRUE(engine.has_database("fresh"));
  EXPECT_GE(server.metrics().swaps, 1u);

  // An align routed at the new database over the same connection.
  AlignRequest request;
  request.id = 8;
  request.threshold = 1;
  request.protein = "MK";
  request.database = "fresh";
  ASSERT_TRUE(write_frame(conn.fd(), encode(request)));
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  AlignResponse align_response;
  ASSERT_TRUE(decode(payload, align_response));
  EXPECT_TRUE(align_response.ok()) << align_response.error;
  EXPECT_EQ(align_response.generation, response.generation);

  // And an unknown name comes back as the typed routing error.
  request.id = 9;
  request.database = "no-such-db";
  ASSERT_TRUE(write_frame(conn.fd(), encode(request)));
  ASSERT_TRUE(read_frame(conn.fd(), payload));
  ASSERT_TRUE(decode(payload, align_response));
  EXPECT_EQ(align_response.status,
            static_cast<std::uint8_t>(core::ErrorCode::UnknownDatabase));

  conn.close();
  server.shutdown();
  accept_thread.join();
}

}  // namespace
}  // namespace fabp::net
