#include "fabp/align/local.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::align {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;
using bio::SeqKind;

NucleotideSequence dna(const char* text) {
  return NucleotideSequence::parse(SeqKind::Dna, text);
}

TEST(SmithWaterman, PerfectNucleotideMatch) {
  const auto q = dna("ACGTACGT");
  const auto r = dna("TTTACGTACGTTTT");
  const Alignment a = smith_waterman(q, r);
  EXPECT_EQ(a.score, 8 * NucleotideScoring{}.match);
  EXPECT_EQ(a.query_begin, 0u);
  EXPECT_EQ(a.query_end, 8u);
  EXPECT_EQ(a.ref_begin, 3u);
  EXPECT_EQ(a.ref_end, 11u);
  EXPECT_EQ(a.cigar(), "8M");
}

TEST(SmithWaterman, EmptyInputsScoreZero) {
  const auto q = dna("");
  const auto r = dna("ACGT");
  EXPECT_EQ(smith_waterman(q, r).score, 0);
  EXPECT_EQ(smith_waterman_score(q, r), 0);
}

TEST(SmithWaterman, NoSimilarityScoresZero) {
  const auto q = dna("AAAA");
  const auto r = dna("CCCC");
  // Local alignment never goes negative; a single mismatch start is
  // rejected by the zero floor.
  EXPECT_EQ(smith_waterman(q, r).score, 0);
}

TEST(SmithWaterman, GapInReference) {
  // Query has an extra base relative to the reference hit region.
  const auto q = dna("ACGTTTTACG");
  const auto r = dna("ACGTTTACG");
  const Alignment a = smith_waterman(q, r, NucleotideScoring{},
                                     GapPenalties{3, 1});
  // Expect one insertion (query-consuming) op in the traceback.
  std::size_t inserts = 0;
  for (EditOp op : a.ops)
    if (op == EditOp::Insert) ++inserts;
  EXPECT_EQ(inserts, 1u);
  EXPECT_EQ(a.score, 9 * 2 - 3 - 1);
}

TEST(SmithWaterman, TracebackScoreConsistent) {
  // Property: recomputing the score from the traceback ops equals score.
  util::Xoshiro256 rng{11};
  for (int trial = 0; trial < 30; ++trial) {
    const auto q = bio::random_dna(30, rng);
    const auto r = bio::random_dna(80, rng);
    const NucleotideScoring scoring;
    const GapPenalties gaps{4, 1};
    const Alignment a = smith_waterman(q, r, scoring, gaps);
    int recomputed = 0;
    std::size_t qi = a.query_begin, ri = a.ref_begin;
    bool in_gap_q = false, in_gap_r = false;
    for (EditOp op : a.ops) {
      if (op == EditOp::Match) {
        recomputed += scoring(q[qi++], r[ri++]);
        in_gap_q = in_gap_r = false;
      } else if (op == EditOp::Insert) {
        recomputed -= in_gap_q ? gaps.extend : gaps.open + gaps.extend;
        in_gap_q = true;
        in_gap_r = false;
        ++qi;
      } else {
        recomputed -= in_gap_r ? gaps.extend : gaps.open + gaps.extend;
        in_gap_r = true;
        in_gap_q = false;
        ++ri;
      }
    }
    EXPECT_EQ(recomputed, a.score) << "trial " << trial;
    EXPECT_EQ(qi, a.query_end);
    EXPECT_EQ(ri, a.ref_end);
  }
}

TEST(SmithWaterman, ScoreOnlyMatchesTraceback) {
  util::Xoshiro256 rng{13};
  for (int trial = 0; trial < 40; ++trial) {
    const auto q = bio::random_dna(25, rng);
    const auto r = bio::random_dna(60, rng);
    EXPECT_EQ(smith_waterman_score(q, r), smith_waterman(q, r).score);
  }
}

TEST(SmithWaterman, ProteinBlosumAlignment) {
  const auto q = ProteinSequence::parse("MKWVTFISLL");
  const auto r = ProteinSequence::parse("GGGMKWVTFISLLGGG");
  const Alignment a =
      smith_waterman(q, r, SubstitutionMatrix::blosum62());
  EXPECT_EQ(a.query_begin, 0u);
  EXPECT_EQ(a.query_end, 10u);
  EXPECT_EQ(a.ref_begin, 3u);
  int expected = 0;
  const auto& m = SubstitutionMatrix::blosum62();
  for (std::size_t i = 0; i < q.size(); ++i) expected += m.score(q[i], q[i]);
  EXPECT_EQ(a.score, expected);
}

TEST(SmithWaterman, SubstitutionToleratedByBlosum) {
  const auto q = ProteinSequence::parse("MKWVTFISLL");
  auto r_mut = ProteinSequence::parse("MKWVTFISLL");
  r_mut[5] = bio::AminoAcid::Tyr;  // F->Y scores +3, still positive
  const Alignment a =
      smith_waterman(q, r_mut, SubstitutionMatrix::blosum62());
  EXPECT_EQ(a.ops.size(), 10u);  // still one contiguous match block
}

TEST(SmithWatermanProperty, ScoreNeverNegativeAndBounded) {
  util::Xoshiro256 rng{17};
  const auto& m = SubstitutionMatrix::blosum62();
  for (int trial = 0; trial < 25; ++trial) {
    const auto q = bio::random_protein(20, rng);
    const auto r = bio::random_protein(50, rng);
    const int s = smith_waterman_score(q, r, m);
    EXPECT_GE(s, 0);
    EXPECT_LE(s, static_cast<int>(q.size()) * m.max_score());
  }
}

TEST(SmithWatermanProperty, MonotoneUnderConcatenation) {
  // Appending reference context can never *reduce* the local score.
  util::Xoshiro256 rng{19};
  for (int trial = 0; trial < 20; ++trial) {
    const auto q = bio::random_dna(15, rng);
    const auto r1 = bio::random_dna(40, rng);
    auto r2 = r1;
    r2.append(bio::random_dna(20, rng));
    EXPECT_LE(smith_waterman_score(q, r1), smith_waterman_score(q, r2));
  }
}

TEST(NeedlemanWunsch, IdenticalSequences) {
  const auto q = dna("ACGTACGT");
  EXPECT_EQ(needleman_wunsch_score(q, q), 8 * 2);
}

TEST(NeedlemanWunsch, GlobalGapCost) {
  const auto q = dna("ACGT");
  const auto r = dna("ACGTAA");
  // Global: must pay for the two dangling reference bases.
  const GapPenalties gaps{2, 1};
  EXPECT_EQ(needleman_wunsch_score(q, r, NucleotideScoring{}, gaps),
            4 * 2 - (2 + 2 * 1));
}

TEST(NeedlemanWunsch, NeverExceedsLocal) {
  util::Xoshiro256 rng{23};
  for (int trial = 0; trial < 25; ++trial) {
    const auto q = bio::random_dna(20, rng);
    const auto r = bio::random_dna(30, rng);
    EXPECT_LE(needleman_wunsch_score(q, r), smith_waterman_score(q, r));
  }
}

TEST(Alignment, CigarRuns) {
  Alignment a;
  a.ops = {EditOp::Match, EditOp::Match, EditOp::Delete, EditOp::Match,
           EditOp::Insert, EditOp::Insert};
  EXPECT_EQ(a.cigar(), "2M1D1M2I");
  EXPECT_EQ(a.matches_or_mismatches(), 3u);
  EXPECT_EQ(a.indel_ops(), 3u);
}

TEST(Alignment, EmptyCigar) {
  EXPECT_EQ(Alignment{}.cigar(), "");
}

}  // namespace
}  // namespace fabp::align
