#include "fabp/align/scoring.hpp"

#include <gtest/gtest.h>

namespace fabp::align {
namespace {

using bio::AminoAcid;

TEST(NucleotideScoring, MatchMismatch) {
  NucleotideScoring s;
  EXPECT_EQ(s(bio::Nucleotide::A, bio::Nucleotide::A), s.match);
  EXPECT_EQ(s(bio::Nucleotide::A, bio::Nucleotide::G), s.mismatch);
}

TEST(Blosum62, IsSymmetric) {
  const auto& m = SubstitutionMatrix::blosum62();
  for (AminoAcid a : bio::kAllAminoAcids)
    for (AminoAcid b : bio::kAllAminoAcids)
      EXPECT_EQ(m.score(a, b), m.score(b, a))
          << bio::to_char(a) << bio::to_char(b);
}

TEST(Blosum62, DiagonalIsPositive) {
  const auto& m = SubstitutionMatrix::blosum62();
  for (AminoAcid a : bio::kAllAminoAcids)
    EXPECT_GT(m.score(a, a), 0) << bio::to_char(a);
}

TEST(Blosum62, CanonicalEntries) {
  const auto& m = SubstitutionMatrix::blosum62();
  // Spot values from the published matrix.
  EXPECT_EQ(m.score(AminoAcid::Trp, AminoAcid::Trp), 11);
  EXPECT_EQ(m.score(AminoAcid::Cys, AminoAcid::Cys), 9);
  EXPECT_EQ(m.score(AminoAcid::Ala, AminoAcid::Ala), 4);
  EXPECT_EQ(m.score(AminoAcid::Leu, AminoAcid::Ile), 2);
  EXPECT_EQ(m.score(AminoAcid::Trp, AminoAcid::Gly), -2);
  EXPECT_EQ(m.score(AminoAcid::Asp, AminoAcid::Glu), 2);
  EXPECT_EQ(m.score(AminoAcid::Arg, AminoAcid::Lys), 2);
  EXPECT_EQ(m.score(AminoAcid::Pro, AminoAcid::Phe), -4);
}

TEST(Blosum62, StopConvention) {
  const auto& m = SubstitutionMatrix::blosum62();
  EXPECT_EQ(m.score(AminoAcid::Stop, AminoAcid::Stop), 1);
  for (AminoAcid a : bio::kAllAminoAcids) {
    if (a == AminoAcid::Stop) continue;
    EXPECT_EQ(m.score(AminoAcid::Stop, a), -4);
  }
}

TEST(Blosum62, MaxScoreIsTrpTrp) {
  EXPECT_EQ(SubstitutionMatrix::blosum62().max_score(), 11);
}

TEST(GapPenalties, Defaults) {
  GapPenalties g;
  EXPECT_EQ(g.open, 11);
  EXPECT_EQ(g.extend, 1);
}

}  // namespace
}  // namespace fabp::align
