#include "fabp/align/extension.hpp"

#include <gtest/gtest.h>

#include "fabp/align/local.hpp"
#include "fabp/bio/generate.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::align {
namespace {

using bio::ProteinSequence;

const SubstitutionMatrix& blosum() {
  return SubstitutionMatrix::blosum62();
}

TEST(UngappedExtend, ExtendsPerfectMatchFully) {
  const auto q = ProteinSequence::parse("MKWVTFISLL");
  const auto r = ProteinSequence::parse("AAAMKWVTFISLLAAA");
  // Seed at query 3, ref 6 ('V'), word length 3.
  const auto ext = ungapped_extend(q, r, 3, 6, 3, blosum());
  EXPECT_EQ(ext.query_begin, 0u);
  EXPECT_EQ(ext.query_end, 10u);
  EXPECT_EQ(ext.ref_begin, 3u);
  EXPECT_EQ(ext.ref_end, 13u);
  int expected = 0;
  for (std::size_t i = 0; i < q.size(); ++i)
    expected += blosum().score(q[i], q[i]);
  EXPECT_EQ(ext.score, expected);
}

TEST(UngappedExtend, XDropStopsAtJunk) {
  // Match region followed by strong mismatches; extension must not drag
  // far into the junk.
  const auto q = ProteinSequence::parse("WWWWWPPPPP");
  const auto r = ProteinSequence::parse("WWWWWGGGGG");
  const auto ext = ungapped_extend(q, r, 0, 0, 3, blosum(), 10);
  EXPECT_EQ(ext.query_begin, 0u);
  EXPECT_EQ(ext.query_end, 5u);  // stops after the W block
  EXPECT_EQ(ext.score, 5 * blosum().score(bio::AminoAcid::Trp,
                                          bio::AminoAcid::Trp));
}

TEST(UngappedExtend, SeedAtSequenceEdges) {
  const auto q = ProteinSequence::parse("MKW");
  const auto r = ProteinSequence::parse("MKW");
  const auto ext = ungapped_extend(q, r, 0, 0, 3, blosum());
  EXPECT_EQ(ext.query_begin, 0u);
  EXPECT_EQ(ext.query_end, 3u);
}

TEST(UngappedExtend, SeedLenClampedAtEnd) {
  const auto q = ProteinSequence::parse("MKW");
  const auto r = ProteinSequence::parse("AAMKW");
  const auto ext = ungapped_extend(q, r, 2, 4, 3, blosum());
  EXPECT_LE(ext.query_end, q.size());
  EXPECT_LE(ext.ref_end, r.size());
}

TEST(UngappedExtend, NeverExceedsSmithWaterman) {
  // Ungapped extension is a restriction of local alignment.
  util::Xoshiro256 rng{29};
  for (int trial = 0; trial < 30; ++trial) {
    const auto q = bio::random_protein(20, rng);
    const auto r = bio::random_protein(40, rng);
    const std::size_t qp = rng.bounded(q.size() - 3);
    const std::size_t rp = rng.bounded(r.size() - 3);
    const auto ext = ungapped_extend(q, r, qp, rp, 3, blosum());
    EXPECT_LE(ext.score,
              smith_waterman_score(q, r, blosum(), GapPenalties{1000, 1000}) +
                  0)
        << trial;
  }
}

TEST(BandedLocal, PerfectMatchEqualsFullSw) {
  const auto q = ProteinSequence::parse("MKWVTFISLL");
  const auto r = ProteinSequence::parse("CCCMKWVTFISLLCCC");
  const int banded = banded_local_score(q, r, 0, 3, 8, blosum());
  EXPECT_EQ(banded, smith_waterman_score(q, r, blosum()));
}

TEST(BandedLocal, NarrowBandMissesOffDiagonal) {
  // Alignment requiring a 3-residue shift; band of 1 cannot reach it but a
  // band of 8 can.
  const auto q = ProteinSequence::parse("MKWVTFISLL");
  const auto r = ProteinSequence::parse("MKWCCCVTFISLL");
  const int wide = banded_local_score(q, r, 0, 0, 8, blosum());
  const int narrow = banded_local_score(q, r, 0, 0, 1, blosum());
  EXPECT_GE(wide, narrow);
}

TEST(BandedLocal, NeverExceedsFullSw) {
  util::Xoshiro256 rng{31};
  for (int trial = 0; trial < 30; ++trial) {
    const auto q = bio::random_protein(15, rng);
    const auto r = bio::random_protein(40, rng);
    const std::size_t rp = rng.bounded(r.size());
    const int banded = banded_local_score(q, r, 0, rp, 5, blosum());
    const int full = smith_waterman_score(q, r, blosum());
    EXPECT_LE(banded, full) << trial;
    EXPECT_GE(banded, 0);
  }
}

TEST(BandedLocal, WideBandConvergesToFullSw) {
  util::Xoshiro256 rng{37};
  for (int trial = 0; trial < 15; ++trial) {
    const auto q = bio::random_protein(12, rng);
    const auto r = bio::random_protein(25, rng);
    const int banded = banded_local_score(q, r, 0, 0, r.size() + q.size(),
                                          blosum());
    EXPECT_EQ(banded, smith_waterman_score(q, r, blosum())) << trial;
  }
}

TEST(BandedLocal, SeedFarIntoQueryRegressions) {
  // Regression: a seed with subject position far *left* of the query
  // position puts the whole band left of column 1 for early rows (the
  // j_hi underflow crash found by the Figure-6 harness).
  util::Xoshiro256 rng{41};
  const auto q = bio::random_protein(250, rng);
  const auto r = bio::random_protein(300, rng);
  for (std::size_t qp : {0u, 100u, 249u})
    for (std::size_t rp : {0u, 3u, 299u}) {
      const int s = banded_local_score(q, r, qp, rp, 16, blosum());
      EXPECT_GE(s, 0);
      EXPECT_LE(s, smith_waterman_score(q, r, blosum()));
    }
}

TEST(BandedLocal, OffsetBandMatchesFullSwWhenWide) {
  // Wide band centered on an arbitrary off-zero diagonal still spans the
  // whole matrix, so it must equal full Smith-Waterman.
  util::Xoshiro256 rng{43};
  const auto q = bio::random_protein(15, rng);
  const auto r = bio::random_protein(30, rng);
  const int full = smith_waterman_score(q, r, blosum());
  EXPECT_EQ(banded_local_score(q, r, 10, 2, q.size() + r.size(), blosum()),
            full);
  EXPECT_EQ(banded_local_score(q, r, 2, 25, q.size() + r.size(), blosum()),
            full);
}

TEST(BandedLocal, EmptySequences) {
  EXPECT_EQ(banded_local_score(ProteinSequence{}, ProteinSequence{}, 0, 0, 4,
                               blosum()),
            0);
}

}  // namespace
}  // namespace fabp::align
