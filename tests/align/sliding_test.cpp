#include "fabp/align/sliding.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::align {
namespace {

using bio::NucleotideSequence;
using bio::SeqKind;

NucleotideSequence dna(const char* text) {
  return NucleotideSequence::parse(SeqKind::Dna, text);
}

TEST(Sliding, ExactMatchFound) {
  const auto q = dna("ACGT");
  const auto r = dna("TTACGTTT");
  const auto hits = sliding_hits(q, r, 4);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].position, 2u);
  EXPECT_EQ(hits[0].score, 4u);
}

TEST(Sliding, ThresholdFiltersPartialMatches) {
  const auto q = dna("AAAA");
  const auto r = dna("AAATAAAA");
  EXPECT_EQ(sliding_hits(q, r, 4).size(), 1u);   // only the perfect hit
  EXPECT_EQ(sliding_hits(q, r, 3).size(), 5u);   // all offsets score >= 3
}

TEST(Sliding, ScoreAtMatchesBruteForce) {
  util::Xoshiro256 rng{3};
  const auto q = bio::random_dna(20, rng);
  const auto r = bio::random_dna(100, rng);
  for (std::size_t p = 0; p + q.size() <= r.size(); ++p) {
    std::uint32_t expected = 0;
    for (std::size_t i = 0; i < q.size(); ++i)
      if (q[i] == r[p + i]) ++expected;
    EXPECT_EQ(sliding_score_at(q, r, p), expected);
  }
}

TEST(Sliding, EmptyQueryOrShortReference) {
  EXPECT_TRUE(sliding_hits(dna(""), dna("ACGT"), 0).empty());
  EXPECT_TRUE(sliding_hits(dna("ACGTACGT"), dna("ACG"), 0).empty());
}

TEST(Sliding, ThresholdZeroReportsEveryPosition) {
  const auto q = dna("AC");
  const auto r = dna("GGGGG");
  EXPECT_EQ(sliding_hits(q, r, 0).size(), 4u);
}

TEST(Sliding, ParallelMatchesSerial) {
  util::Xoshiro256 rng{5};
  util::ThreadPool pool{4};
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = bio::random_dna(15, rng);
    const auto r = bio::random_dna(500, rng);
    const auto threshold = static_cast<std::uint32_t>(rng.bounded(16));
    EXPECT_EQ(sliding_hits_parallel(q, r, threshold, pool),
              sliding_hits(q, r, threshold))
        << trial;
  }
}

TEST(Sliding, HitsSortedByPosition) {
  util::Xoshiro256 rng{7};
  const auto q = bio::random_dna(8, rng);
  const auto r = bio::random_dna(300, rng);
  const auto hits = sliding_hits(q, r, 2);
  for (std::size_t i = 1; i < hits.size(); ++i)
    EXPECT_LT(hits[i - 1].position, hits[i].position);
}

}  // namespace
}  // namespace fabp::align
