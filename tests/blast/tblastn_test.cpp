#include "fabp/blast/tblastn.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::blast {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;
using bio::SeqKind;

// Builds a reference with one planted coding sequence for `protein` at a
// known position and random context around it.
struct Planted {
  NucleotideSequence dna;
  std::size_t position;
};

Planted plant(const ProteinSequence& protein, std::size_t context,
              std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  Planted out;
  out.dna = bio::random_dna(context, rng);
  const NucleotideSequence coding =
      bio::random_coding_sequence(protein, rng);
  out.position = context / 2;
  NucleotideSequence dna = bio::random_dna(context, rng);
  for (std::size_t i = 0; i < coding.size(); ++i)
    dna[out.position + i] = coding[i];
  out.dna = dna;
  return out;
}

TblastnConfig fast_config() {
  TblastnConfig cfg;
  cfg.evalue_cutoff = 1e3;  // permissive for small test databases
  return cfg;
}

TEST(Tblastn, FindsPlantedGeneInForwardFrame) {
  util::Xoshiro256 rng{51};
  const ProteinSequence protein = bio::random_protein(40, rng);
  const Planted planted = plant(protein, 6000, 52);

  Tblastn engine{protein, fast_config()};
  const TblastnResult result = engine.search(planted.dna);
  ASSERT_FALSE(result.hits.empty());

  bool found = false;
  for (const auto& hit : result.hits) {
    if (hit.dna_position >= planted.position &&
        hit.dna_position < planted.position + 3 * protein.size())
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Tblastn, FindsGeneOnReverseStrand) {
  util::Xoshiro256 rng{53};
  const ProteinSequence protein = bio::random_protein(35, rng);
  Planted planted = plant(protein, 5000, 54);
  const NucleotideSequence flipped = planted.dna.reverse_complement();

  Tblastn engine{protein, fast_config()};
  const TblastnResult result = engine.search(flipped);
  ASSERT_FALSE(result.hits.empty());
  bool reverse_frame = false;
  for (const auto& hit : result.hits)
    if (hit.frame >= 3) reverse_frame = true;
  EXPECT_TRUE(reverse_frame);
}

TEST(Tblastn, ToleratesProteinDivergence) {
  util::Xoshiro256 rng{55};
  const ProteinSequence protein = bio::random_protein(50, rng);
  const ProteinSequence diverged = bio::mutate_protein(protein, 0.15, rng);
  const Planted planted = plant(protein, 8000, 56);

  Tblastn engine{diverged, fast_config()};
  const TblastnResult result = engine.search(planted.dna);
  bool found = false;
  for (const auto& hit : result.hits)
    if (hit.dna_position >= planted.position &&
        hit.dna_position < planted.position + 3 * protein.size())
      found = true;
  EXPECT_TRUE(found);
}

TEST(Tblastn, RandomQueryAgainstRandomDnaFindsLittle) {
  util::Xoshiro256 rng{57};
  const ProteinSequence query = bio::random_protein(40, rng);
  const NucleotideSequence dna = bio::random_dna(6000, rng);
  TblastnConfig cfg;
  cfg.evalue_cutoff = 1e-3;  // strict
  Tblastn engine{query, cfg};
  const TblastnResult result = engine.search(dna);
  EXPECT_TRUE(result.hits.empty());
}

TEST(Tblastn, StatsAccountPipelineStages) {
  util::Xoshiro256 rng{59};
  const ProteinSequence protein = bio::random_protein(30, rng);
  const Planted planted = plant(protein, 4000, 60);
  Tblastn engine{protein, fast_config()};
  const TblastnResult result = engine.search(planted.dna);
  const TblastnStats& s = result.stats;
  EXPECT_GT(s.residues_scanned, 0u);
  EXPECT_GT(s.word_probes, 0u);
  EXPECT_GT(s.seed_hits, 0u);
  EXPECT_GE(s.seed_hits, s.two_hit_pairs);
  EXPECT_GE(s.two_hit_pairs, s.ungapped_extensions);
  EXPECT_GE(s.ungapped_extensions, s.gapped_extensions);
  EXPECT_EQ(s.hsps_reported, result.hits.size());
}

TEST(Tblastn, SingleHitModeFindsMoreSeeds) {
  util::Xoshiro256 rng{61};
  const ProteinSequence protein = bio::random_protein(30, rng);
  const Planted planted = plant(protein, 4000, 62);

  TblastnConfig two_hit = fast_config();
  TblastnConfig one_hit = fast_config();
  one_hit.two_hit = false;

  const auto r2 = Tblastn{protein, two_hit}.search(planted.dna);
  const auto r1 = Tblastn{protein, one_hit}.search(planted.dna);
  EXPECT_GE(r1.stats.ungapped_extensions, r2.stats.ungapped_extensions);
}

TEST(Tblastn, HitsAreSortedAndScored) {
  util::Xoshiro256 rng{63};
  const ProteinSequence protein = bio::random_protein(40, rng);
  const Planted planted = plant(protein, 6000, 64);
  Tblastn engine{protein, fast_config()};
  const TblastnResult result = engine.search(planted.dna);
  for (std::size_t i = 1; i < result.hits.size(); ++i) {
    EXPECT_LE(result.hits[i - 1].frame, result.hits[i].frame);
  }
  for (const auto& hit : result.hits) {
    EXPECT_GT(hit.score, 0);
    EXPECT_GT(hit.bits, 0.0);
    EXPECT_GE(hit.evalue, 0.0);
    EXPECT_LE(hit.query_begin, hit.query_end);
    EXPECT_LE(hit.subject_begin, hit.subject_end);
    EXPECT_LT(hit.dna_position, planted.dna.size());
  }
}

TEST(Tblastn, ParallelSearchFindsPlantedGene) {
  util::Xoshiro256 rng{65};
  const ProteinSequence protein = bio::random_protein(30, rng);
  const Planted planted = plant(protein, 300'000, 66);

  util::ThreadPool pool{4};
  Tblastn engine{protein, fast_config()};
  const TblastnResult parallel =
      engine.search_parallel(planted.dna, pool, 1 << 16);

  bool found = false;
  for (const auto& hit : parallel.hits)
    if (hit.dna_position >= planted.position &&
        hit.dna_position < planted.position + 3 * protein.size())
      found = true;
  EXPECT_TRUE(found);
}

TEST(Tblastn, ParallelSmallInputFallsBackToSerial) {
  util::Xoshiro256 rng{67};
  const ProteinSequence protein = bio::random_protein(25, rng);
  const Planted planted = plant(protein, 3000, 68);
  util::ThreadPool pool{2};
  Tblastn engine{protein, fast_config()};
  const auto serial = engine.search(planted.dna);
  const auto parallel = engine.search_parallel(planted.dna, pool, 1 << 20);
  EXPECT_EQ(serial.hits.size(), parallel.hits.size());
}

TEST(Tblastn, ReportedEvaluesRespectTheCutoff) {
  util::Xoshiro256 rng{69};
  const ProteinSequence protein = bio::random_protein(35, rng);
  const Planted planted = plant(protein, 8000, 70);
  TblastnConfig cfg;
  cfg.evalue_cutoff = 1e-2;
  Tblastn engine{protein, cfg};
  const auto result = engine.search(planted.dna);
  for (const auto& hit : result.hits) {
    EXPECT_LE(hit.evalue, cfg.evalue_cutoff * 1.0001);
    EXPECT_GT(hit.bits, 0.0);
  }
}

TEST(Tblastn, SearchIsDeterministic) {
  util::Xoshiro256 rng{71};
  const ProteinSequence protein = bio::random_protein(30, rng);
  const Planted planted = plant(protein, 5000, 72);
  Tblastn engine{protein, fast_config()};
  const auto a = engine.search(planted.dna);
  const auto b = engine.search(planted.dna);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.stats.seed_hits, b.stats.seed_hits);
}

TEST(Tblastn, AlignHitProducesFullTraceback) {
  util::Xoshiro256 rng{73};
  const ProteinSequence protein = bio::random_protein(40, rng);
  const Planted planted = plant(protein, 6000, 74);
  Tblastn engine{protein, fast_config()};
  const auto result = engine.search(planted.dna);
  ASSERT_FALSE(result.hits.empty());

  // Take the best hit (the planted gene) and traceback.
  const TblastnHit best = *std::max_element(
      result.hits.begin(), result.hits.end(),
      [](const TblastnHit& a, const TblastnHit& b) {
        return a.score < b.score;
      });
  const align::Alignment alignment = engine.align_hit(best, planted.dna);
  // Full-length, gap-free identity alignment of the planted gene.
  EXPECT_EQ(alignment.cigar(), std::to_string(protein.size()) + "M");
  EXPECT_EQ(alignment.query_begin, 0u);
  EXPECT_EQ(alignment.query_end, protein.size());
  EXPECT_GE(alignment.score, best.score);
  // Subject extent covers the reported HSP (frame coordinates).
  EXPECT_LE(alignment.ref_begin, best.subject_begin);
  EXPECT_GE(alignment.ref_end, best.subject_end);
}

TEST(Tblastn, BitscanPrefilterFindsPlantedGeneWithFewerProbes) {
  util::Xoshiro256 rng{81};
  const ProteinSequence protein = bio::random_protein(40, rng);
  const Planted planted = plant(protein, 20000, 82);

  Tblastn full{protein, fast_config()};
  const TblastnResult reference_result = full.search(planted.dna);

  TblastnConfig cfg = fast_config();
  cfg.bitscan_prefilter = true;
  Tblastn filtered{protein, cfg};
  const TblastnResult result = filtered.search(planted.dna);

  // The planted gene survives the prefilter...
  bool found = false;
  for (const auto& hit : result.hits)
    if (hit.dna_position >= planted.position &&
        hit.dna_position < planted.position + 3 * protein.size())
      found = true;
  EXPECT_TRUE(found);
  // ...and the seeding scan touched a fraction of the residues the full
  // scan grinds through (that is the point of the prefilter).
  ASSERT_GT(reference_result.stats.word_probes, 0u);
  EXPECT_LT(result.stats.word_probes,
            reference_result.stats.word_probes / 4);
}

TEST(Tblastn, BitscanPrefilterFindsReverseStrandGene) {
  util::Xoshiro256 rng{83};
  const ProteinSequence protein = bio::random_protein(35, rng);
  const Planted planted = plant(protein, 12000, 84);
  const NucleotideSequence flipped = planted.dna.reverse_complement();

  TblastnConfig cfg = fast_config();
  cfg.bitscan_prefilter = true;
  Tblastn engine{protein, cfg};
  const TblastnResult result = engine.search(flipped);
  ASSERT_FALSE(result.hits.empty());
  bool reverse_frame = false;
  for (const auto& hit : result.hits)
    if (hit.frame >= 3) reverse_frame = true;
  EXPECT_TRUE(reverse_frame);
}

TEST(Tblastn, BitscanPrefilterNoCandidatesMeansNoHits) {
  // A background-only reference with a high prefilter fraction: the scan
  // yields no candidate windows and the search returns cleanly.
  util::Xoshiro256 rng{85};
  const ProteinSequence protein = bio::random_protein(45, rng);
  TblastnConfig cfg = fast_config();
  cfg.bitscan_prefilter = true;
  cfg.prefilter_fraction = 0.95;
  Tblastn engine{protein, cfg};
  const auto result = engine.search(bio::random_dna(8000, rng));
  EXPECT_TRUE(result.hits.empty());
  EXPECT_EQ(result.stats.word_probes, 0u);
}

TEST(Tblastn, TinyReferenceNoCrash) {
  const ProteinSequence protein = ProteinSequence::parse("MKWVTF");
  Tblastn engine{protein, fast_config()};
  const auto result =
      engine.search(NucleotideSequence::parse(SeqKind::Dna, "AC"));
  EXPECT_TRUE(result.hits.empty());
}

}  // namespace
}  // namespace fabp::blast
