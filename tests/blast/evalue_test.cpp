#include "fabp/blast/evalue.hpp"

#include <gtest/gtest.h>

namespace fabp::blast {
namespace {

TEST(KarlinAltschul, PublishedParameterSets) {
  const auto ungapped = KarlinAltschulParams::blosum62_ungapped();
  EXPECT_NEAR(ungapped.lambda, 0.3176, 1e-4);
  EXPECT_NEAR(ungapped.k, 0.134, 1e-4);
  const auto gapped = KarlinAltschulParams::blosum62_gapped_11_1();
  EXPECT_NEAR(gapped.lambda, 0.267, 1e-4);
  EXPECT_NEAR(gapped.k, 0.041, 1e-4);
}

TEST(BitScore, MonotoneInRawScore) {
  const auto params = KarlinAltschulParams::blosum62_gapped_11_1();
  double prev = bit_score(0, params);
  for (int s = 1; s < 200; s += 10) {
    const double b = bit_score(s, params);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(BitScore, KnownValue) {
  // S=50 with gapped params: (0.267*50 - ln 0.041)/ln2 ~ 23.87 bits.
  const double b =
      bit_score(50, KarlinAltschulParams::blosum62_gapped_11_1());
  EXPECT_NEAR(b, 23.87, 0.05);
}

TEST(Evalue, DecreasesWithScore) {
  const SearchSpace space{100, 1'000'000};
  const auto params = KarlinAltschulParams::blosum62_gapped_11_1();
  double prev = evalue(10, space, params);
  for (int s = 20; s <= 100; s += 10) {
    const double e = evalue(s, space, params);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(Evalue, GrowsWithDatabase) {
  const auto params = KarlinAltschulParams::blosum62_gapped_11_1();
  const double small = evalue(60, SearchSpace{100, 1'000'000}, params);
  const double large = evalue(60, SearchSpace{100, 1'000'000'000}, params);
  EXPECT_GT(large, small);
}

TEST(Evalue, EffectiveSpaceSmallerThanRaw) {
  const SearchSpace space{100, 1'000'000};
  const auto params = KarlinAltschulParams::blosum62_gapped_11_1();
  EXPECT_LT(space.effective(params), 100.0 * 1'000'000.0);
  EXPECT_GT(space.effective(params), 0.0);
}

TEST(ScoreForEvalue, InvertsEvalue) {
  const SearchSpace space{150, 500'000'000};
  const auto params = KarlinAltschulParams::blosum62_gapped_11_1();
  for (double target : {10.0, 1e-3, 1e-10}) {
    const int s = score_for_evalue(target, space, params);
    EXPECT_LE(evalue(s, space, params), target * 1.0001);
    if (s > 0) {
      EXPECT_GT(evalue(s - 1, space, params), target);
    }
  }
}

TEST(ScoreForEvalue, NeverNegative) {
  const auto params = KarlinAltschulParams::blosum62_gapped_11_1();
  EXPECT_GE(score_for_evalue(1e30, SearchSpace{10, 100}, params), 0);
}

TEST(Evalue, TinyTargetsClamped) {
  const SearchSpace space{100, 1'000'000};
  const auto params = KarlinAltschulParams::blosum62_gapped_11_1();
  // Should not overflow / UB with a zero target.
  const int s = score_for_evalue(0.0, space, params);
  EXPECT_GT(s, 100);
}

}  // namespace
}  // namespace fabp::blast
