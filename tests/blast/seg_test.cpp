#include "fabp/blast/seg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fabp/bio/generate.hpp"
#include "fabp/blast/tblastn.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::blast {
namespace {

using bio::AminoAcid;
using bio::ProteinSequence;

TEST(Entropy, UniformCompositionIsMaximal) {
  // 12 distinct residues -> log2(12) bits.
  ProteinSequence p = ProteinSequence::parse("ARNDCQEGHILK");
  EXPECT_NEAR(composition_entropy(p.residues()), std::log2(12.0), 1e-9);
}

TEST(Entropy, HomopolymerIsZero) {
  ProteinSequence p = ProteinSequence::parse("AAAAAAAAAAAA");
  EXPECT_EQ(composition_entropy(p.residues()), 0.0);
}

TEST(Entropy, EmptyIsZero) {
  EXPECT_EQ(composition_entropy({}), 0.0);
}

TEST(Seg, HomopolymerFullyMasked) {
  ProteinSequence p;
  for (int i = 0; i < 40; ++i) p.push_back(AminoAcid::Ala);
  const auto mask = seg_mask(p);
  EXPECT_NEAR(masked_fraction(mask), 1.0, 1e-9);
}

TEST(Seg, RandomProteinMostlyUnmasked) {
  util::Xoshiro256 rng{501};
  const ProteinSequence p = bio::random_protein(500, rng);
  const auto mask = seg_mask(p);
  EXPECT_LT(masked_fraction(mask), 0.05);
}

TEST(Seg, DipeptideRepeatMasked) {
  ProteinSequence p;
  for (int i = 0; i < 30; ++i) {
    p.push_back(AminoAcid::Gln);
    p.push_back(AminoAcid::Pro);
  }
  const auto mask = seg_mask(p);
  EXPECT_GT(masked_fraction(mask), 0.9);
}

TEST(Seg, MixedSequenceMasksOnlyTheRepeat) {
  util::Xoshiro256 rng{503};
  ProteinSequence p = bio::random_protein(60, rng);
  const std::size_t repeat_begin = p.size();
  for (int i = 0; i < 25; ++i) p.push_back(AminoAcid::Ser);
  const std::size_t repeat_end = p.size();
  const ProteinSequence tail = bio::random_protein(60, rng);
  for (AminoAcid aa : tail) p.push_back(aa);

  const auto mask = seg_mask(p);
  // Core of the repeat masked...
  for (std::size_t i = repeat_begin + 8; i + 8 < repeat_end; ++i)
    EXPECT_TRUE(mask[i]) << i;
  // ...random flanks mostly untouched.
  std::size_t masked_flank = 0;
  for (std::size_t i = 0; i < 40; ++i)
    if (mask[i]) ++masked_flank;
  EXPECT_LT(masked_flank, 5u);
}

TEST(Seg, ShortSequencesNeverMasked) {
  ProteinSequence p = ProteinSequence::parse("AAAAA");  // shorter than window
  EXPECT_EQ(masked_fraction(seg_mask(p)), 0.0);
}

TEST(Seg, MaskedFractionEmpty) {
  EXPECT_EQ(masked_fraction({}), 0.0);
}

TEST(Seg, KmerIndexSkipsMaskedWindows) {
  util::Xoshiro256 rng{509};
  ProteinSequence p;
  for (int i = 0; i < 30; ++i) p.push_back(AminoAcid::Lys);  // poly-K
  const auto mask = seg_mask(p);
  ASSERT_GT(masked_fraction(mask), 0.9);

  const auto& matrix = align::SubstitutionMatrix::blosum62();
  const KmerIndex unmasked{p, KmerIndexConfig{}, matrix};
  const KmerIndex masked{p, KmerIndexConfig{}, matrix, &mask};
  EXPECT_GT(unmasked.entry_count(), 0u);
  EXPECT_EQ(masked.entry_count(), 0u);
}

TEST(Seg, TblastnWithMaskAvoidsLowComplexitySeeds) {
  // Query: half poly-Q, half a real planted gene fragment.  Against random
  // DNA plus a planted poly-Q-rich region, the masked search probes far
  // fewer seeds and still finds the informative half.
  util::Xoshiro256 rng{521};
  ProteinSequence informative = bio::random_protein(30, rng);
  ProteinSequence query;
  for (int i = 0; i < 30; ++i) query.push_back(AminoAcid::Gln);
  for (AminoAcid aa : informative) query.push_back(aa);

  bio::NucleotideSequence dna = bio::random_dna(20'000, rng);
  const auto coding = bio::random_coding_sequence(informative, rng);
  for (std::size_t i = 0; i < coding.size(); ++i) dna[7'000 + i] = coding[i];
  // A genomic poly-Q (CAG repeat) stretch that would seed wildly.
  for (std::size_t i = 0; i < 300; i += 3) {
    dna[12'000 + i] = bio::Nucleotide::C;
    dna[12'001 + i] = bio::Nucleotide::A;
    dna[12'002 + i] = bio::Nucleotide::G;
  }

  TblastnConfig with_mask;
  TblastnConfig without_mask;
  without_mask.mask_query = false;

  const auto masked = Tblastn{query, with_mask}.search(dna);
  const auto unmasked = Tblastn{query, without_mask}.search(dna);

  EXPECT_LT(masked.stats.seed_hits, unmasked.stats.seed_hits / 2);
  bool found = false;
  for (const auto& hit : masked.hits)
    if (hit.dna_position >= 6'990 && hit.dna_position <= 7'100) found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace fabp::blast
