#include "fabp/blast/kmer_index.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::blast {
namespace {

using bio::AminoAcid;
using bio::ProteinSequence;

const align::SubstitutionMatrix& blosum() {
  return align::SubstitutionMatrix::blosum62();
}

int word_score(std::span<const AminoAcid> a, std::span<const AminoAcid> b) {
  int s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += blosum().score(a[i], b[i]);
  return s;
}

TEST(PackKmer, DistinctWordsDistinctCodes) {
  const auto a = ProteinSequence::parse("MKW");
  const auto b = ProteinSequence::parse("MKV");
  EXPECT_NE(pack_kmer(std::span{a.residues()}),
            pack_kmer(std::span{b.residues()}));
}

TEST(PackKmer, FiveBitsPerResidue) {
  const auto w = ProteinSequence::parse("AAA");  // Ala index 0
  EXPECT_EQ(pack_kmer(std::span{w.residues()}), 0u);
  const auto v = ProteinSequence::parse("AAR");  // Arg index 1
  EXPECT_EQ(pack_kmer(std::span{v.residues()}), 1u);
}

TEST(KmerIndex, SelfWordsAlwaysIndexed) {
  // Every query word's neighborhood contains the word itself when its
  // self-score clears T (true for essentially all BLOSUM62 3-mers).
  const auto query = ProteinSequence::parse("MKWVTFISLLFL");
  KmerIndex index{query, KmerIndexConfig{3, 11}, blosum()};
  const auto& residues = query.residues();
  for (std::size_t p = 0; p + 3 <= residues.size(); ++p) {
    const std::span<const AminoAcid> word{residues.data() + p, 3};
    if (word_score(word, word) < 11) continue;
    const auto positions = index.lookup(residues, p);
    EXPECT_NE(std::find(positions.begin(), positions.end(), p),
              positions.end())
        << "position " << p;
  }
}

TEST(KmerIndex, LookupRespectsThresholdExactly) {
  // Property: for random probe words, lookup hits exactly the query
  // positions whose window scores >= T against the probe.
  util::Xoshiro256 rng{41};
  const ProteinSequence query = bio::random_protein(40, rng);
  const int t = 11;
  KmerIndex index{query, KmerIndexConfig{3, t}, blosum()};

  for (int trial = 0; trial < 300; ++trial) {
    const ProteinSequence probe = bio::random_protein(3, rng);
    const std::span<const AminoAcid> probe_span{probe.residues()};
    const auto positions = index.lookup(probe_span, 0);

    for (std::size_t p = 0; p + 3 <= query.size(); ++p) {
      const std::span<const AminoAcid> window{query.residues().data() + p, 3};
      const bool expected = word_score(probe_span, window) >= t;
      const bool found = std::find(positions.begin(), positions.end(), p) !=
                         positions.end();
      EXPECT_EQ(found, expected) << "trial " << trial << " pos " << p;
    }
  }
}

TEST(KmerIndex, EntriesSortedPerWord) {
  util::Xoshiro256 rng{43};
  const ProteinSequence query = bio::random_protein(60, rng);
  KmerIndex index{query, KmerIndexConfig{3, 13}, blosum()};
  // Probe a bunch of packed words directly.
  for (std::uint32_t w = 0; w < (1u << 15); w += 997) {
    const auto positions = index.lookup_packed(w);
    for (std::size_t i = 1; i < positions.size(); ++i)
      EXPECT_LT(positions[i - 1], positions[i]);
  }
}

TEST(KmerIndex, StopWordsNeverSeed) {
  auto query = ProteinSequence::parse("MKW");
  query.push_back(AminoAcid::Stop);
  query.push_back(AminoAcid::Lys);
  query.push_back(AminoAcid::Trp);
  KmerIndex index{query, KmerIndexConfig{3, 5}, blosum()};
  // Any window overlapping the stop (positions 1,2,3) is absent.
  const auto& residues = query.residues();
  for (std::size_t p = 1; p <= 3; ++p) {
    const auto positions = index.lookup(residues, p);
    EXPECT_TRUE(positions.empty()) << p;
  }
}

TEST(KmerIndex, HigherThresholdSmallerIndex) {
  util::Xoshiro256 rng{47};
  const ProteinSequence query = bio::random_protein(80, rng);
  const KmerIndex loose{query, KmerIndexConfig{3, 9}, blosum()};
  const KmerIndex strict{query, KmerIndexConfig{3, 14}, blosum()};
  EXPECT_GT(loose.entry_count(), strict.entry_count());
}

TEST(KmerIndex, ShortQueryYieldsEmptyIndex) {
  const auto query = ProteinSequence::parse("MK");
  KmerIndex index{query, KmerIndexConfig{3, 11}, blosum()};
  EXPECT_EQ(index.entry_count(), 0u);
}

TEST(KmerIndex, RejectsBadK) {
  const auto query = ProteinSequence::parse("MKWMKW");
  EXPECT_THROW((KmerIndex{query, KmerIndexConfig{0, 11}, blosum()}),
               std::invalid_argument);
  EXPECT_THROW((KmerIndex{query, KmerIndexConfig{6, 11}, blosum()}),
               std::invalid_argument);
}

TEST(KmerIndex, LookupPastEndEmpty) {
  const auto query = ProteinSequence::parse("MKWMKW");
  KmerIndex index{query, KmerIndexConfig{3, 11}, blosum()};
  EXPECT_TRUE(index.lookup(query.residues(), 4).empty());
  EXPECT_TRUE(index.lookup(query.residues(), 100).empty());
}

TEST(KmerIndex, K2Works) {
  const auto query = ProteinSequence::parse("WWCC");
  KmerIndex index{query, KmerIndexConfig{2, 10}, blosum()};
  // WW self-score 22 >= 10; CC self-score 18 >= 10.
  EXPECT_FALSE(index.lookup(query.residues(), 0).empty());
  EXPECT_FALSE(index.lookup(query.residues(), 2).empty());
}

}  // namespace
}  // namespace fabp::blast
