#include "fabp/core/host.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;

TEST(Session, RequiresUploadedReference) {
  Session session;
  util::Xoshiro256 rng{161};
  // Typed error boundary: try_align reports NoReference, align throws the
  // exception form carrying the same payload.
  const auto result = session.try_align(bio::random_protein(10, rng), 0);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::NoReference);
  try {
    session.align(bio::random_protein(10, rng), 0);
    FAIL() << "align without a reference must throw";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), ErrorCode::NoReference);
  }
}

TEST(Session, SoftwareHitsBatchRejectsMismatchedThresholds) {
  util::Xoshiro256 rng{162};
  Session session;
  session.upload_reference(bio::random_dna(2000, rng));
  const std::vector<ProteinSequence> queries{bio::random_protein(8, rng),
                                             bio::random_protein(9, rng)};
  const std::vector<std::uint32_t> thresholds{10};  // one short
  EXPECT_THROW(session.software_hits_batch(queries, thresholds),
               std::invalid_argument);
}

TEST(Session, EndToEndFindsPlantedGene) {
  util::Xoshiro256 rng{163};
  const ProteinSequence protein = bio::random_protein(30, rng);
  NucleotideSequence ref = bio::random_dna(5000, rng);
  const NucleotideSequence coding = random_template_coding(protein, rng);
  for (std::size_t i = 0; i < coding.size(); ++i) ref[1234 + i] = coding[i];

  Session session;
  session.upload_reference(ref);
  const HostRunReport report =
      session.align(protein, static_cast<std::uint32_t>(coding.size()));

  bool found = false;
  for (const Hit& h : report.hits)
    if (h.position == 1234) found = true;
  EXPECT_TRUE(found);
}

TEST(Session, ReportTimesArePositiveAndSum) {
  util::Xoshiro256 rng{167};
  Session session;
  session.upload_reference(bio::random_dna(10'000, rng));
  const HostRunReport r = session.align(bio::random_protein(20, rng), 40);
  EXPECT_GT(r.query_transfer_s, 0.0);
  EXPECT_GT(r.kernel_s, 0.0);
  EXPECT_GT(r.readback_s, 0.0);
  EXPECT_EQ(r.reference_transfer_s, 0.0);  // resident by default
  EXPECT_NEAR(r.total_s,
              r.reference_transfer_s + r.query_transfer_s + r.kernel_s +
                  r.readback_s,
              1e-12);
  EXPECT_NEAR(r.joules, r.watts * r.total_s, 1e-12);
}

TEST(Session, NonResidentReferenceChargesTransfer) {
  util::Xoshiro256 rng{173};
  HostConfig cfg;
  cfg.reference_resident = false;
  Session session{cfg};
  session.upload_reference(bio::random_dna(40'000, rng));
  const HostRunReport r = session.align(bio::random_protein(15, rng), 45);
  EXPECT_GT(r.reference_transfer_s, 0.0);
  // 40,000 bases at 2 bits each = 10,000 packed bytes, at 12 GB/s.
  EXPECT_NEAR(r.reference_transfer_s, 10'000.0 / 12e9, 1e-9);
}

TEST(Session, EstimateScalesWithDatabaseSize) {
  util::Xoshiro256 rng{179};
  Session session;
  const ProteinSequence protein = bio::random_protein(50, rng);
  const HostRunReport small = session.estimate(protein, 100, 1 << 20);
  const HostRunReport large = session.estimate(protein, 100, 1 << 26);
  EXPECT_GT(large.kernel_s, small.kernel_s * 50);
  EXPECT_NEAR(large.kernel_s / small.kernel_s, 64.0, 2.0);
}

TEST(Session, EstimateKernelMatchesBandwidthModel) {
  util::Xoshiro256 rng{181};
  Session session;
  const ProteinSequence protein = bio::random_protein(50, rng);
  const std::size_t bytes = 1 << 28;  // 256 MiB packed
  const HostRunReport r = session.estimate(protein, 120, bytes);
  const double expected =
      static_cast<double>(bytes) / r.mapping.effective_bandwidth_bps;
  EXPECT_NEAR(r.kernel_s, expected, expected * 0.02);
}

TEST(Session, BatchAlignsEveryQuery) {
  util::Xoshiro256 rng{193};
  Session session;
  NucleotideSequence ref = bio::random_dna(8000, rng);
  std::vector<ProteinSequence> queries;
  std::vector<std::size_t> positions;
  for (int q = 0; q < 3; ++q) {
    const ProteinSequence protein = bio::random_protein(20, rng);
    const NucleotideSequence coding = random_template_coding(protein, rng);
    const std::size_t pos = 1000 + static_cast<std::size_t>(q) * 2000;
    for (std::size_t i = 0; i < coding.size(); ++i) ref[pos + i] = coding[i];
    queries.push_back(protein);
    positions.push_back(pos);
  }
  session.upload_reference(ref);

  const Session::BatchReport batch = session.align_batch(queries, 0.95);
  ASSERT_EQ(batch.per_query.size(), 3u);
  for (int q = 0; q < 3; ++q) {
    bool found = false;
    for (const Hit& h : batch.per_query[static_cast<std::size_t>(q)].hits)
      if (h.position == positions[static_cast<std::size_t>(q)]) found = true;
    EXPECT_TRUE(found) << q;
  }
  EXPECT_GE(batch.total_hits, 3u);
  EXPECT_GT(batch.queries_per_second, 0.0);
  double sum = 0;
  for (const auto& r : batch.per_query) sum += r.total_s;
  EXPECT_NEAR(batch.total_s, sum, 1e-12);
}

TEST(Session, BatchIdenticalToPerQueryAligns) {
  // align_batch precomputes every hit list in one pass over the cached
  // reference planes; the reports must nonetheless be exactly what
  // per-query align() produces — hits, order, and timing model included.
  util::Xoshiro256 rng{194};
  for (bool both_strands : {false, true}) {
    HostConfig config;
    config.search_both_strands = both_strands;
    Session session{config};
    session.upload_reference(bio::random_dna(6000, rng));
    std::vector<ProteinSequence> queries;
    for (int q = 0; q < 5; ++q)
      queries.push_back(bio::random_protein(8 + rng.next() % 30, rng));

    const double fraction = 0.7;
    const Session::BatchReport batch = session.align_batch(queries, fraction);
    ASSERT_EQ(batch.per_query.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto threshold = static_cast<std::uint32_t>(
          fraction * static_cast<double>(queries[q].size() * 3));
      const HostRunReport solo = session.align(queries[q], threshold);
      EXPECT_EQ(batch.per_query[q].hits, solo.hits) << q;
      EXPECT_EQ(batch.per_query[q].reverse_hits, solo.reverse_hits) << q;
      EXPECT_EQ(batch.per_query[q].total_s, solo.total_s) << q;
      EXPECT_EQ(batch.per_query[q].joules, solo.joules) << q;
    }
  }
}

TEST(Session, SoftwareHitsBatchMatchesPerQuery) {
  util::Xoshiro256 rng{195};
  Session session;
  session.upload_reference(bio::random_dna(5000, rng));
  std::vector<ProteinSequence> queries;
  std::vector<std::uint32_t> thresholds;
  for (int q = 0; q < 6; ++q) {
    queries.push_back(bio::random_protein(5 + rng.next() % 25, rng));
    thresholds.push_back(
        static_cast<std::uint32_t>(queries.back().size() * 2));
  }
  const auto batch = session.software_hits_batch(queries, thresholds);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    EXPECT_EQ(batch[q], session.software_hits(queries[q], thresholds[q]))
        << q;

  util::ThreadPool pool{3};
  EXPECT_EQ(session.software_hits_batch(queries, thresholds, &pool), batch);
}

TEST(Session, ReuploadInvalidatesBitscanPlanes) {
  // Regression: software scans after a re-upload must see the new
  // reference, never the stale compiled planes of the old one.
  util::Xoshiro256 rng{196};
  const ProteinSequence protein = bio::random_protein(15, rng);
  const auto elements = back_translate(protein);
  const NucleotideSequence ref_a = bio::random_dna(3000, rng);
  NucleotideSequence ref_b = bio::random_dna(3000, rng);
  // Plant the gene only in B so the hit lists provably differ.
  const NucleotideSequence coding = random_template_coding(protein, rng);
  for (std::size_t i = 0; i < coding.size(); ++i) ref_b[500 + i] = coding[i];
  const auto threshold = static_cast<std::uint32_t>(elements.size());

  Session session;
  session.upload_reference(ref_a);
  const auto hits_a = session.software_hits(protein, threshold);
  session.upload_reference(ref_b);
  const auto hits_b = session.software_hits(protein, threshold);

  EXPECT_NE(hits_a, hits_b);
  EXPECT_EQ(hits_a, golden_hits(elements, ref_a, threshold));
  EXPECT_EQ(hits_b, golden_hits(elements, ref_b, threshold));
  bool planted_found = false;
  for (const Hit& h : hits_b)
    if (h.position == 500 && h.score == threshold) planted_found = true;
  EXPECT_TRUE(planted_found);

  // align() goes through Accelerator and compiles planes per run, but the
  // batch path reuses the session caches — check it too.
  const auto batch = session.align_batch(std::vector{protein}, 1.0);
  ASSERT_EQ(batch.per_query.size(), 1u);
  EXPECT_EQ(batch.per_query[0].hits, hits_b);
}

TEST(Session, BothStrandsFindsReverseGene) {
  util::Xoshiro256 rng{199};
  const ProteinSequence protein = bio::random_protein(25, rng);
  const NucleotideSequence coding = random_template_coding(protein, rng);

  // Plant the gene on the REVERSE strand: insert rc(coding) forward.
  NucleotideSequence ref = bio::random_dna(4000, rng);
  const NucleotideSequence rc_coding = coding.reverse_complement();
  const std::size_t pos = 1500;
  for (std::size_t i = 0; i < rc_coding.size(); ++i)
    ref[pos + i] = rc_coding[i];

  HostConfig cfg;
  cfg.search_both_strands = true;
  Session session{cfg};
  session.upload_reference(ref);
  const auto threshold = static_cast<std::uint32_t>(coding.size());
  const HostRunReport report = session.align(protein, threshold);

  // Forward scan misses it; the reverse scan reports it at the forward
  // coordinate of the planted window.
  bool forward_found = false;
  for (const Hit& h : report.hits)
    if (h.position == pos) forward_found = true;
  EXPECT_FALSE(forward_found);

  bool reverse_found = false;
  for (const Hit& h : report.reverse_hits)
    if (h.position == pos) reverse_found = true;
  EXPECT_TRUE(reverse_found);
}

TEST(Session, BothStrandsDoublesKernelTime) {
  util::Xoshiro256 rng{211};
  const NucleotideSequence ref = bio::random_dna(50'000, rng);
  const ProteinSequence query = bio::random_protein(20, rng);

  Session single;
  single.upload_reference(ref);
  const double one = single.align(query, 55).kernel_s;

  HostConfig cfg;
  cfg.search_both_strands = true;
  Session both{cfg};
  both.upload_reference(ref);
  const double two = both.align(query, 55).kernel_s;
  EXPECT_NEAR(two / one, 2.0, 0.05);
}

TEST(Session, SingleStrandReportsNoReverseHits) {
  util::Xoshiro256 rng{223};
  Session session;
  session.upload_reference(bio::random_dna(2000, rng));
  const auto report = session.align(bio::random_protein(10, rng), 0);
  EXPECT_TRUE(report.reverse_hits.empty());
}

TEST(Session, BatchEmptyIsFine) {
  Session session;
  util::Xoshiro256 rng{197};
  session.upload_reference(bio::random_dna(1000, rng));
  const auto batch = session.align_batch({}, 0.9);
  EXPECT_TRUE(batch.per_query.empty());
  EXPECT_EQ(batch.total_s, 0.0);
  EXPECT_EQ(batch.queries_per_second, 0.0);
}

TEST(Session, LongQueryUsesSegmentedMapping) {
  util::Xoshiro256 rng{191};
  Session session;
  const HostRunReport r =
      session.estimate(bio::random_protein(250, rng), 600, 1 << 24);
  EXPECT_GT(r.mapping.segments, 1u);
}

TEST(TileScanSession, TiledAndPlanesPathsAgreeEverywhere) {
  // The scan-path escape hatch must be a pure implementation switch:
  // align, align_batch (both strands, pooled and serial), software_hits
  // and software_hits_batch all produce identical output either way.
  util::Xoshiro256 rng{251};
  const NucleotideSequence ref = bio::random_dna(9000, rng);
  std::vector<ProteinSequence> queries;
  for (int q = 0; q < 4; ++q)
    queries.push_back(bio::random_protein(8 + rng.next() % 25, rng));
  std::vector<std::uint32_t> thresholds;
  for (const auto& query : queries)
    thresholds.push_back(static_cast<std::uint32_t>(query.size() * 2));

  util::ThreadPool pool{3};
  for (bool both_strands : {false, true}) {
    HostConfig tiled_cfg;
    tiled_cfg.search_both_strands = both_strands;
    tiled_cfg.scan_path = ScanPath::Tiled;
    tiled_cfg.tile.tile_positions = 1024;  // many tiles even at 9 kb
    HostConfig planes_cfg = tiled_cfg;
    planes_cfg.scan_path = ScanPath::Planes;

    Session tiled{tiled_cfg};
    Session planes{planes_cfg};
    ASSERT_TRUE(tiled.tiled());
    ASSERT_FALSE(planes.tiled());
    tiled.upload_reference(ref);
    planes.upload_reference(ref);

    const HostRunReport a = tiled.align(queries[0], thresholds[0]);
    const HostRunReport b = planes.align(queries[0], thresholds[0]);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.reverse_hits, b.reverse_hits);

    for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr),
                                &pool}) {
      const auto ta = tiled.align_batch(queries, 0.7, p);
      const auto pa = planes.align_batch(queries, 0.7, p);
      ASSERT_EQ(ta.per_query.size(), pa.per_query.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        EXPECT_EQ(ta.per_query[q].hits, pa.per_query[q].hits) << q;
        EXPECT_EQ(ta.per_query[q].reverse_hits, pa.per_query[q].reverse_hits)
            << q;
      }
      EXPECT_EQ(tiled.software_hits_batch(queries, thresholds, p),
                planes.software_hits_batch(queries, thresholds, p));
    }
    EXPECT_EQ(tiled.software_hits(queries[1], thresholds[1], &pool),
              planes.software_hits(queries[1], thresholds[1]));
  }
}

TEST(TileScanSession, BothStrandPlaneCompilesOverlapOnPool) {
  // ensure_planes builds the reverse planes on a worker while the caller
  // builds the forward planes; results must match the serial compile and
  // a planted reverse-strand gene must still be found.
  util::Xoshiro256 rng{257};
  const ProteinSequence protein = bio::random_protein(20, rng);
  const NucleotideSequence coding = random_template_coding(protein, rng);
  NucleotideSequence ref = bio::random_dna(6000, rng);
  const NucleotideSequence rc_coding = coding.reverse_complement();
  const std::size_t pos = 2000;
  for (std::size_t i = 0; i < rc_coding.size(); ++i)
    ref[pos + i] = rc_coding[i];

  HostConfig cfg;
  cfg.search_both_strands = true;
  cfg.scan_path = ScanPath::Planes;
  util::ThreadPool pool{2};
  const std::vector<ProteinSequence> queries{protein};

  Session pooled{cfg};
  pooled.upload_reference(ref);
  const auto with_pool = pooled.align_batch(queries, 1.0, &pool);

  Session serial{cfg};
  serial.upload_reference(ref);
  const auto without = serial.align_batch(queries, 1.0);

  ASSERT_EQ(with_pool.per_query.size(), 1u);
  EXPECT_EQ(with_pool.per_query[0].hits, without.per_query[0].hits);
  EXPECT_EQ(with_pool.per_query[0].reverse_hits,
            without.per_query[0].reverse_hits);
  bool reverse_found = false;
  for (const Hit& h : with_pool.per_query[0].reverse_hits)
    if (h.position == pos) reverse_found = true;
  EXPECT_TRUE(reverse_found);
}

}  // namespace
}  // namespace fabp::core
