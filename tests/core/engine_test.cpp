#include "fabp/core/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fabp/bio/generate.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;

std::vector<ProteinSequence> make_queries(std::size_t count,
                                          util::Xoshiro256& rng) {
  std::vector<ProteinSequence> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    queries.push_back(bio::random_protein(6 + i % 6, rng));
  return queries;
}

std::uint32_t half_threshold(const ProteinSequence& query) {
  return static_cast<std::uint32_t>(query.size() * 3 / 2);
}

// The engine's core determinism contract: results of coalesced concurrent
// submission are hit-for-hit identical to sequential Session::align of the
// same queries — for every backend kind, both strands on.
TEST(Engine, CoalescedEqualsSequentialAllBackends) {
  util::Xoshiro256 rng{911};
  const NucleotideSequence ref = bio::random_dna(30000, rng);
  const std::vector<ProteinSequence> queries = make_queries(48, rng);

  for (const BackendKind kind :
       {BackendKind::HwSim, BackendKind::Tiled, BackendKind::Planes}) {
    EngineConfig config;
    config.host.search_both_strands = true;
    config.backend = kind;
    config.workers = 2;

    // Sequential truth through the same backend kind.
    Engine sequential{config};
    sequential.upload_reference(NucleotideSequence{ref});
    std::vector<std::vector<Hit>> expected_fwd, expected_rev;
    for (const ProteinSequence& query : queries) {
      Expected<HostRunReport> report =
          sequential.align_sync(query, half_threshold(query));
      ASSERT_TRUE(report.has_value()) << to_string(kind);
      expected_fwd.push_back(report->hits);
      expected_rev.push_back(report->reverse_hits);
    }

    // Concurrent submission; the workers coalesce whatever queues up.
    Engine engine{config};
    engine.upload_reference(NucleotideSequence{ref});
    std::vector<Ticket> tickets;
    tickets.reserve(queries.size());
    for (const ProteinSequence& query : queries)
      tickets.push_back(engine.submit(query, half_threshold(query)));
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      Expected<HostRunReport> report = tickets[i].wait();
      ASSERT_TRUE(report.has_value()) << to_string(kind) << " query " << i;
      EXPECT_EQ(report->hits, expected_fwd[i])
          << to_string(kind) << " query " << i;
      EXPECT_EQ(report->reverse_hits, expected_rev[i])
          << to_string(kind) << " query " << i;
    }

    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.submitted, queries.size()) << to_string(kind);
    EXPECT_EQ(stats.completed, queries.size()) << to_string(kind);
    EXPECT_EQ(stats.failed + stats.cancelled + stats.expired, 0u)
        << to_string(kind);
  }
}

// Holding the workers off (autostart=false) makes queue behavior exact:
// capacity bounds admissions and the overflow is rejected with QueueFull.
TEST(Engine, QueueFullRejectsWithTypedError) {
  util::Xoshiro256 rng{912};
  EngineConfig config;
  config.queue_capacity = 2;
  config.autostart = false;
  Engine engine{config};
  engine.upload_reference(bio::random_dna(5000, rng));

  const ProteinSequence query = bio::random_protein(8, rng);
  Ticket a = engine.submit(query, half_threshold(query));
  Ticket b = engine.submit(query, half_threshold(query));
  Ticket rejected = engine.submit(query, half_threshold(query));

  ASSERT_TRUE(rejected.ready());
  const Expected<HostRunReport> outcome = rejected.wait();
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::QueueFull);
  EXPECT_EQ(engine.stats().rejected, 1u);

  engine.start();
  EXPECT_TRUE(a.wait().has_value());
  EXPECT_TRUE(b.wait().has_value());
}

TEST(Engine, CancelWhileQueuedWinsDeterministically) {
  util::Xoshiro256 rng{913};
  EngineConfig config;
  config.autostart = false;
  Engine engine{config};
  engine.upload_reference(bio::random_dna(5000, rng));

  const ProteinSequence query = bio::random_protein(8, rng);
  Ticket ticket = engine.submit(query, half_threshold(query));
  EXPECT_TRUE(ticket.cancel());
  EXPECT_FALSE(ticket.cancel());  // second cancel loses
  const Expected<HostRunReport> outcome = ticket.wait();
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::Cancelled);
  EXPECT_EQ(engine.stats().cancelled, 1u);

  // A cancelled entry must not poison the queue for later requests.
  engine.start();
  Ticket live = engine.submit(query, half_threshold(query));
  EXPECT_TRUE(live.wait().has_value());
}

TEST(Engine, DeadlinePassedWhileQueuedExpires) {
  util::Xoshiro256 rng{914};
  EngineConfig config;
  config.autostart = false;
  Engine engine{config};
  engine.upload_reference(bio::random_dna(5000, rng));

  const ProteinSequence query = bio::random_protein(8, rng);
  RequestOptions options;
  options.timeout_s = 1e-4;
  Ticket ticket = engine.submit(query, half_threshold(query), options);
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  engine.start();
  const Expected<HostRunReport> outcome = ticket.wait();
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::DeadlineExceeded);
  EXPECT_EQ(engine.stats().expired, 1u);
}

// Unit test for the second deadline checkpoint: drop_expired runs at
// device-dispatch time (after the batch won the execution lock) and must
// fail exactly the at-or-past-deadline entries, compact the batch in
// order, and bump the expired counter.
TEST(Engine, DropExpiredCompactsClaimedBatchAtDispatch) {
  const auto now = std::chrono::steady_clock::now();
  auto counters = std::make_shared<detail::EngineCounters>();
  auto make_state = [&](double offset_s, bool has_deadline) {
    auto state = std::make_shared<detail::RequestState>();
    state->counters = counters;
    state->has_deadline = has_deadline;
    if (has_deadline)
      state->deadline =
          now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(offset_s));
    return state;
  };

  std::vector<std::shared_ptr<detail::RequestState>> batch;
  batch.push_back(make_state(-0.5, true));  // budget burned while claimed
  batch.push_back(make_state(60.0, true));  // live deadline
  batch.push_back(make_state(0.0, false));  // no deadline at all
  batch.push_back(make_state(0.0, true));   // exactly `now` counts as past
  const auto expired_a = batch[0];
  const auto live = batch[1];
  const auto unbounded = batch[2];
  const auto expired_b = batch[3];

  detail::drop_expired(batch, now);

  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], live);       // survivors keep their order
  EXPECT_EQ(batch[1], unbounded);
  EXPECT_EQ(counters->expired.load(), 2u);
  for (const auto& gone : {expired_a, expired_b}) {
    Expected<HostRunReport> outcome = gone->promise.get_future().get();
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error().code, ErrorCode::DeadlineExceeded);
  }
}

TEST(Engine, ShutdownFailsQueuedRequests) {
  util::Xoshiro256 rng{915};
  std::vector<Ticket> tickets;
  {
    EngineConfig config;
    config.autostart = false;
    Engine engine{config};
    engine.upload_reference(bio::random_dna(5000, rng));
    const ProteinSequence query = bio::random_protein(8, rng);
    tickets.push_back(engine.submit(query, half_threshold(query)));
    tickets.push_back(engine.submit(query, half_threshold(query)));
  }  // destroyed with both requests still queued
  for (Ticket& ticket : tickets) {
    const Expected<HostRunReport> outcome = ticket.wait();
    ASSERT_FALSE(outcome.has_value());
    EXPECT_EQ(outcome.error().code, ErrorCode::ShuttingDown);
  }
}

TEST(Engine, SubmitWithoutReferenceFailsTyped) {
  Engine engine;
  const ProteinSequence query = ProteinSequence::parse("MFSRW");
  Ticket ticket = engine.submit(query, 1);
  const Expected<HostRunReport> outcome = ticket.wait();
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::NoReference);
}

TEST(Engine, InvalidEngineConfigRejected) {
  EngineConfig config;
  config.workers = 0;
  EXPECT_EQ(validate_engine_config(config).code, ErrorCode::InvalidConfig);
  try {
    Engine engine{config};
    FAIL() << "invalid engine config must throw at construction";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), ErrorCode::InvalidConfig);
  }
}

TEST(Engine, CompilerCacheServesRepeatedQueries) {
  util::Xoshiro256 rng{916};
  Engine engine;
  engine.upload_reference(bio::random_dna(5000, rng));
  const ProteinSequence query = bio::random_protein(8, rng);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(engine.align_sync(query, half_threshold(query)).has_value());
  const QueryCompilerStats stats = engine.compiler_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
}

// Concurrency stress: several client threads submitting, cancelling and
// waiting at once against a small queue.  Run under tsan by the check.sh
// engine leg; the invariants here are exact regardless of interleaving.
TEST(Engine, StressConcurrentSubmitCancelWait) {
  util::Xoshiro256 rng{917};
  const NucleotideSequence ref = bio::random_dna(20000, rng);
  const std::vector<ProteinSequence> queries = make_queries(8, rng);

  EngineConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.max_coalesce = 8;
  Engine engine{config};
  engine.upload_reference(NucleotideSequence{ref});

  // Sequential truth per distinct query.
  std::vector<std::vector<Hit>> expected;
  for (const ProteinSequence& query : queries)
    expected.push_back(
        engine.align_sync(query, half_threshold(query))->hits);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 40;
  std::atomic<std::size_t> wrong{0};
  std::atomic<std::size_t> unexpected_errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t q = (c * kPerClient + i) % queries.size();
        RequestOptions options;
        if (i % 7 == 3) options.timeout_s = 1e-6;  // some expire
        Ticket ticket =
            engine.submit(queries[q], half_threshold(queries[q]), options);
        const bool cancelled = (i % 5 == 2) && ticket.cancel();
        Expected<HostRunReport> outcome = ticket.wait();
        if (outcome.has_value()) {
          if (cancelled || outcome->hits != expected[q]) ++wrong;
        } else {
          const ErrorCode code = outcome.error().code;
          const bool acceptable =
              (code == ErrorCode::Cancelled && cancelled) ||
              code == ErrorCode::DeadlineExceeded ||
              code == ErrorCode::QueueFull;
          if (!acceptable) ++unexpected_errors;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(unexpected_errors.load(), 0u);
  const EngineStats stats = engine.stats();
  // Every accepted request resolved exactly once.
  EXPECT_EQ(stats.completed + stats.failed + stats.cancelled + stats.expired,
            stats.submitted);
}

// Under offered load the queue builds while the backend runs, so batches
// must actually form (this is the mechanism bench_engine measures).
TEST(Engine, CoalescingEngagesUnderBurstLoad) {
  util::Xoshiro256 rng{918};
  EngineConfig config;
  config.workers = 1;
  config.autostart = false;  // let the burst queue up deterministically
  config.queue_capacity = 512;
  Engine engine{config};
  engine.upload_reference(bio::random_dna(20000, rng));

  const std::vector<ProteinSequence> queries = make_queries(6, rng);
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < 64; ++i) {
    const ProteinSequence& query = queries[i % queries.size()];
    tickets.push_back(engine.submit(query, half_threshold(query)));
  }
  engine.start();
  for (Ticket& ticket : tickets) ASSERT_TRUE(ticket.wait().has_value());

  const EngineStats stats = engine.stats();
  EXPECT_GT(stats.coalesced_batches, 0u);
  EXPECT_GT(stats.batch_occupancy(), 1.0);
  EXPECT_LE(stats.largest_batch, config.max_coalesce);
}

}  // namespace
}  // namespace fabp::core
