// Differential coverage of the tile-fused compile+scan path: TileScanner
// must produce output bit-for-bit identical (contents AND order) to the
// golden scalar oracle and to the precompiled-plane path, under every
// kernel reachable on the host, at tile-boundary sizes, with Type III
// history spanning tile edges, over multi-record databases, and with the
// pooled tile-parallel merge.  All tests are named TileScan* so the
// thread-sanitizer leg of tools/check.sh can select them by filter.

#include <gtest/gtest.h>

#include "fabp/bio/database.hpp"
#include "fabp/bio/generate.hpp"
#include "fabp/core/backend.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/core/bitscan_tiled.hpp"
#include "fabp/util/thread_pool.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;

std::vector<BackElement> random_elements(std::size_t n,
                                         util::Xoshiro256& rng) {
  std::vector<BackElement> q;
  q.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.next() % 3) {
      case 0:
        q.push_back(BackElement::make_exact(bio::nucleotide_from_code(
            static_cast<std::uint8_t>(rng.next() % 4))));
        break;
      case 1:
        q.push_back(BackElement::make_conditional(
            static_cast<Condition>(rng.next() % 4)));
        break;
      default:
        q.push_back(BackElement::make_dependent(
            static_cast<Function>(rng.next() % 4)));
        break;
    }
  }
  return q;
}

std::vector<const ScanKernel*> reachable_kernels() {
  std::vector<const ScanKernel*> kernels;
  for (ScanIsa isa : kAllScanIsas)
    if (const ScanKernel* kernel = scan_kernel_for(isa))
      kernels.push_back(kernel);
  return kernels;
}

std::vector<Hit> plane_hits(const ScanKernel& kernel,
                            const BitScanQuery& query,
                            const BitScanReference& reference,
                            std::uint32_t threshold) {
  std::vector<Hit> hits;
  if (query.empty() || reference.size() < query.size()) return hits;
  kernel.range(query, reference, threshold, 0,
               reference.size() - query.size() + 1, hits);
  return hits;
}

std::vector<Hit> tiled_hits(const ScanKernel& kernel,
                            const TileScanner& scanner,
                            const BitScanQuery& query,
                            std::uint32_t threshold) {
  std::vector<Hit> hits;
  if (query.empty() || scanner.size() < query.size()) return hits;
  scanner.range(kernel, query, threshold, 0,
                scanner.size() - query.size() + 1, hits);
  return hits;
}

TEST(TileScan, MatchesGoldenAndPlanesOnRandomCases) {
  util::Xoshiro256 rng{401};
  const auto kernels = reachable_kernels();
  ASSERT_GE(kernels.size(), 2u);
  for (int trial = 0; trial < 8; ++trial) {
    const auto raw = random_elements(1 + rng.next() % 40, rng);
    const NucleotideSequence ref =
        bio::random_dna(raw.size() + rng.next() % 2000, rng);
    const bio::PackedNucleotides packed{ref};
    const BitScanQuery query{raw};
    const BitScanReference reference{packed};
    // Small tiles so even these references span several tile edges.
    const TileScanner scanner{packed, {.tile_positions = 256}};
    for (std::uint32_t t :
         {0u, static_cast<std::uint32_t>(raw.size() / 2),
          static_cast<std::uint32_t>(raw.size())}) {
      const auto golden = golden_hits(raw, ref, t);
      for (const ScanKernel* kernel : kernels) {
        EXPECT_EQ(plane_hits(*kernel, query, reference, t), golden)
            << kernel->name << " trial=" << trial << " t=" << t;
        EXPECT_EQ(tiled_hits(*kernel, scanner, query, t), golden)
            << kernel->name << " trial=" << trial << " t=" << t;
      }
    }
  }
}

TEST(TileScan, TileBoundarySizes) {
  // Reference sizes straddling the tile edge for sub-word, one-word and
  // multi-word tiles: tile-1, tile, tile+1, plus sub-tile references.
  util::Xoshiro256 rng{409};
  const auto kernels = reachable_kernels();
  const auto raw = random_elements(11, rng);
  const BitScanQuery query{raw};
  for (std::size_t tile : {64u, 128u, 320u}) {
    for (std::size_t size : {std::size_t{11}, std::size_t{40},
                             std::size_t{63}, std::size_t{64},
                             std::size_t{65}, tile - 1, tile, tile + 1,
                             2 * tile - 1, 2 * tile, 2 * tile + 1,
                             3 * tile + 17}) {
      const NucleotideSequence ref = bio::random_dna(size, rng);
      const bio::PackedNucleotides packed{ref};
      const TileScanner scanner{packed, {.tile_positions = tile}};
      for (std::uint32_t t : {0u, 5u, 11u}) {
        const auto golden = golden_hits(raw, ref, t);
        for (const ScanKernel* kernel : kernels)
          EXPECT_EQ(tiled_hits(*kernel, scanner, query, t), golden)
              << kernel->name << " tile=" << tile << " size=" << size
              << " t=" << t;
      }
    }
  }
}

TEST(TileScan, HistoryCarriesAcrossTileEdges) {
  // All-Type-III queries score every position through the prev1/prev2
  // history planes; with 64-position tiles every word edge is also a tile
  // edge, so any history-seeding bug at compile_tile's first word shows up
  // as a diff against the oracle.
  util::Xoshiro256 rng{419};
  std::vector<BackElement> raw;
  for (Function f : {Function::Stop3, Function::Leu3, Function::Arg3,
                     Function::AnyD, Function::Stop3, Function::Arg3})
    raw.push_back(BackElement::make_dependent(f));
  const BitScanQuery query{raw};
  for (int trial = 0; trial < 4; ++trial) {
    const NucleotideSequence ref = bio::random_dna(800 + trial * 37, rng);
    const bio::PackedNucleotides packed{ref};
    const TileScanner scanner{packed, {.tile_positions = 64}};
    EXPECT_EQ(scanner.tile_positions(), 64u);
    for (std::uint32_t t : {3u, 6u}) {
      const auto golden = golden_hits(raw, ref, t);
      EXPECT_EQ(scanner.hits(query, t), golden) << "trial=" << trial;
    }
  }
}

TEST(TileScan, RangeClampsAndSplitsLikeKernelRange) {
  util::Xoshiro256 rng{421};
  const auto raw = random_elements(9, rng);
  const NucleotideSequence ref = bio::random_dna(1500, rng);
  const bio::PackedNucleotides packed{ref};
  const BitScanQuery query{raw};
  const TileScanner scanner{packed, {.tile_positions = 128}};
  const auto golden = golden_hits(raw, ref, 4);
  // Out-of-range and inverted ranges are clamped/empty, and a scan split
  // at arbitrary cut points concatenates to the full scan.
  std::vector<Hit> whole;
  scanner.range(query, 4, 0, ref.size() + 999, whole);
  EXPECT_EQ(whole, golden);
  std::vector<Hit> none;
  scanner.range(query, 4, 900, 900, none);
  scanner.range(query, 4, 1200, 700, none);
  EXPECT_TRUE(none.empty());
  for (std::size_t cut : {1u, 64u, 127u, 128u, 129u, 777u, 1490u}) {
    std::vector<Hit> split;
    scanner.range(query, 4, 0, cut, split);
    scanner.range(query, 4, cut, ref.size(), split);
    EXPECT_EQ(split, golden) << "cut=" << cut;
  }
}

TEST(TileScan, MultiRecordDatabaseMatchesPlanesPath) {
  // A multi-record database concatenates records with guard separators in
  // one packed store; the tiled scan over that store must equal the
  // precompiled-plane scan over the same store, so record mapping
  // (locate/annotate) sees identical global hit positions.
  util::Xoshiro256 rng{431};
  bio::ReferenceDatabase db;
  db.add("r0", bio::random_dna(700, rng));
  db.add("r1", bio::random_dna(90, rng));
  db.add("r2", bio::random_dna(1300, rng));
  const auto raw = random_elements(14, rng);
  const BitScanQuery query{raw};
  const BitScanReference reference{db.packed()};
  const TileScanner scanner{db, {.tile_positions = 256}};
  EXPECT_EQ(scanner.size(), db.packed().size());
  for (std::uint32_t t : {0u, 7u, 14u}) {
    const auto planes = bitscan_hits(query, reference, t);
    EXPECT_EQ(scanner.hits(query, t), planes) << "t=" << t;
  }
}

TEST(TileScan, ParallelMergeMatchesSerial) {
  util::Xoshiro256 rng{433};
  const auto raw = random_elements(10, rng);
  const NucleotideSequence ref = bio::random_dna(20'000, rng);
  const bio::PackedNucleotides packed{ref};
  const BitScanQuery query{raw};
  const TileScanner scanner{packed, {.tile_positions = 512}};
  const auto serial = scanner.hits(query, 5);
  EXPECT_EQ(serial, golden_hits(raw, ref, 5));
  for (std::size_t width : {1u, 2u, 5u}) {
    util::ThreadPool pool{width};
    EXPECT_EQ(scanner.hits(query, 5, &pool), serial) << "width=" << width;
  }
}

TEST(TileScan, BatchMatchesPerQueryIncludingDegenerates) {
  util::Xoshiro256 rng{439};
  const NucleotideSequence ref = bio::random_dna(5000, rng);
  const bio::PackedNucleotides packed{ref};
  const TileScanner scanner{packed, {.tile_positions = 512}};

  std::vector<std::vector<BackElement>> raw;
  raw.push_back(random_elements(8, rng));
  raw.push_back({});                          // empty query: no hits
  raw.push_back(random_elements(6000, rng));  // longer than ref: no hits
  raw.push_back(random_elements(21, rng));
  raw.push_back(random_elements(3, rng));
  std::vector<BitScanQuery> queries;
  for (const auto& q : raw) queries.emplace_back(q);
  const std::vector<std::uint32_t> thresholds{4, 0, 10, 22, 1};  // 22 > 21

  for (util::ThreadPool* pool : {static_cast<util::ThreadPool*>(nullptr)}) {
    const auto outs = scanner.hits_batch(queries, thresholds, pool);
    ASSERT_EQ(outs.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q)
      EXPECT_EQ(outs[q], golden_hits(raw[q], ref, thresholds[q]))
          << "q=" << q;
  }
  util::ThreadPool pool{3};
  const auto pooled = scanner.hits_batch(queries, thresholds, &pool);
  const auto serial = scanner.hits_batch(queries, thresholds);
  EXPECT_EQ(pooled, serial);
  EXPECT_THROW(scanner.hits_batch(queries, {thresholds.data(), 2}),
               std::invalid_argument);
}

TEST(TileScan, PrefetchDistanceNeverChangesHits) {
  // Prefetching is a pure latency hint: every distance — off, shorter than
  // a tile, the default, and far past the next tile — must yield the exact
  // serial and pooled hit lists.
  util::Xoshiro256 rng{449};
  const auto raw = random_elements(13, rng);
  const NucleotideSequence ref = bio::random_dna(30'000, rng);
  const bio::PackedNucleotides packed{ref};
  const BitScanQuery query{raw};
  const auto golden = golden_hits(raw, ref, 6);
  util::ThreadPool pool{3};
  for (std::size_t distance : {0u, 8u, 64u, 1024u}) {
    const TileScanner scanner{
        packed, {.tile_positions = 512, .prefetch_distance = distance}};
    EXPECT_EQ(scanner.hits(query, 6), golden) << "distance=" << distance;
    EXPECT_EQ(scanner.hits(query, 6, &pool), golden)
        << "distance=" << distance;
  }
}

TEST(TileScan, PartitionPoliciesAgreeWithSerial) {
  // Static, Stealing and Auto runs must all stitch to the serial scan's
  // exact hit list, single-query and batch, at pool widths that divide the
  // tile count unevenly.
  util::Xoshiro256 rng{457};
  const auto raw = random_elements(10, rng);
  const NucleotideSequence ref = bio::random_dna(40'000, rng);
  const bio::PackedNucleotides packed{ref};
  const BitScanQuery query{raw};

  std::vector<BitScanQuery> queries;
  std::vector<std::vector<BackElement>> raws;
  std::vector<std::uint32_t> thresholds;
  for (std::size_t q = 0; q < 4; ++q) {
    raws.push_back(random_elements(5 + 7 * q, rng));
    queries.emplace_back(raws.back());
    thresholds.push_back(static_cast<std::uint32_t>(raws.back().size() / 2));
  }

  for (TilePartition partition :
       {TilePartition::Auto, TilePartition::Static, TilePartition::Stealing}) {
    const TileScanner scanner{
        packed, {.tile_positions = 512, .partition = partition}};
    const auto serial = scanner.hits(query, 5);
    EXPECT_EQ(serial, golden_hits(raw, ref, 5));
    const auto serial_batch = scanner.hits_batch(queries, thresholds);
    for (std::size_t width : {2u, 5u}) {
      util::ThreadPool pool{width};
      EXPECT_EQ(scanner.hits(query, 5, &pool), serial)
          << "partition=" << static_cast<int>(partition)
          << " width=" << width;
      EXPECT_EQ(scanner.hits_batch(queries, thresholds, &pool), serial_batch)
          << "partition=" << static_cast<int>(partition)
          << " width=" << width;
    }
  }
}

TEST(TileScan, ScanRunsFollowPartitionPolicy) {
  util::Xoshiro256 rng{461};
  const bio::PackedNucleotides packed{bio::random_dna(64 * 100, rng)};
  const std::size_t positions = packed.size();  // 100 tiles of 64
  auto runs = [&](TilePartition p, std::size_t workers) {
    const TileScanner scanner{packed,
                              {.tile_positions = 64, .partition = p}};
    return scanner.scan_runs(positions, workers);
  };
  // Serial or empty scans are always one run.
  EXPECT_EQ(runs(TilePartition::Static, 1), 1u);
  EXPECT_EQ(runs(TilePartition::Stealing, 0), 1u);
  // Static: one run per worker, capped by the tile count.
  EXPECT_EQ(runs(TilePartition::Static, 4), 4u);
  EXPECT_EQ(runs(TilePartition::Static, 300), 100u);
  // Stealing: a few runs per worker, capped by the tile count.
  EXPECT_EQ(runs(TilePartition::Stealing, 4), 16u);
  EXPECT_EQ(runs(TilePartition::Stealing, 64), 100u);
  // Auto: static once every worker owns many whole tiles (100 tiles over
  // 4 workers = 25 each), stealing-grained when workers are tile-starved.
  EXPECT_EQ(runs(TilePartition::Auto, 4), 4u);
  EXPECT_EQ(runs(TilePartition::Auto, 32), 100u);
  // Never more runs than tiles, even for sub-tile scans.
  const TileScanner scanner{
      packed, {.tile_positions = 64, .partition = TilePartition::Stealing}};
  EXPECT_EQ(scanner.scan_runs(30, 8), 1u);
}

TEST(TileScan, PartitionIdentityAcrossBackends) {
  // The partition knob rides HostConfig::tile into every backend; all
  // three kinds must return identical hits whichever policy is set,
  // pooled or not.
  util::Xoshiro256 rng{463};
  const NucleotideSequence ref = bio::random_dna(25'000, rng);
  const bio::ProteinSequence protein = bio::random_protein(9, rng);
  const CompiledQueryPtr query = compile_query(protein);
  const std::uint32_t threshold =
      static_cast<std::uint32_t>(query->size() / 2);
  const std::vector<Hit> expected =
      golden_hits(query->elements, ref, threshold);

  util::ThreadPool pool{4};
  for (const BackendKind kind :
       {BackendKind::HwSim, BackendKind::Tiled, BackendKind::Planes}) {
    for (TilePartition partition :
         {TilePartition::Static, TilePartition::Stealing}) {
      HostConfig config;
      config.tile.tile_positions = 1024;
      config.tile.partition = partition;
      ReferenceStore store;
      store.upload(bio::PackedNucleotides{ref}, config.search_both_strands);
      const std::unique_ptr<ScanBackend> backend =
          make_backend(kind, config, store);
      BackendRequest request;
      request.query = query.get();
      request.threshold = threshold;
      request.pool = &pool;
      Expected<BackendRun> run = backend->run(request);
      ASSERT_TRUE(run.has_value()) << to_string(kind);
      EXPECT_EQ(run->hits, expected)
          << to_string(kind) << " partition=" << static_cast<int>(partition);
    }
  }
}

TEST(TileScan, ScratchFootprintIsIndependentOfReferenceSize) {
  util::Xoshiro256 rng{443};
  const bio::PackedNucleotides small{bio::random_dna(10'000, rng)};
  const bio::PackedNucleotides large{bio::random_dna(1'000'000, rng)};
  const TileScanConfig config{.tile_positions = 128 * 1024};
  const TileScanner a{small, config};
  const TileScanner b{large, config};
  // O(tile + query), not O(reference): same tile, same scratch.
  EXPECT_EQ(a.scratch_bytes(40), b.scratch_bytes(40));
  // 12 planes over ~tile/64 words plus query spill and guards — the whole
  // per-thread working set stays a small multiple of the tile itself.
  EXPECT_LE(b.scratch_bytes(40),
            12 * (config.tile_positions / 64 + 64) * sizeof(std::uint64_t));
  EXPECT_GE(b.scratch_bytes(40),
            12 * (config.tile_positions / 64) * sizeof(std::uint64_t));
  // Tile geometry: rounded up to whole words, covers the reference.
  EXPECT_EQ(b.tile_count(),
            (large.size() + b.tile_positions() - 1) / b.tile_positions());
  const TileScanner tiny{small, {.tile_positions = 1}};
  EXPECT_EQ(tiny.tile_positions(), 64u);  // minimum one word
}

TEST(TileScan, ScanPathResolution) {
  // Explicit requests win regardless of the environment; Auto is resolved
  // once per process from FABP_SCAN_MODE (exercised by tools/check.sh legs
  // rather than here, to keep this test env-order independent).
  EXPECT_TRUE(use_tiled_scan(ScanPath::Tiled));
  EXPECT_FALSE(use_tiled_scan(ScanPath::Planes));
}

}  // namespace
}  // namespace fabp::core
