// Differential coverage of the carry-save scorer (score_block_csa and the
// kCsa instantiations of scan_range_t / scan_batch_t) — the algorithm
// behind the AVX-512 VPOPCNTDQ kernel — on a portable 64-lane substrate.
//
// The VPOPCNTDQ kernel itself is only reachable on CPUs with the
// instruction (bitscan_kernels_test sweeps it through kAllScanIsas when it
// is), but its algorithm — the VPTERNLOGQ-shaped full-adder accumulate and
// the popcount-census feasibility early exit — is ISA-agnostic.  This
// suite instantiates the exact same templates with plain uint64_t traits,
// so the compressor pairing, the odd-tail path, the reduced-threshold
// borrow compare and the abandon-block decision are all proven bit-exact
// against the scalar golden oracle on every build machine, not just
// Ice-Lake-class hosts.

#include <bit>
#include <gtest/gtest.h>

#include "../../src/fabp/bitscan_kernel_impl.hpp"
#include "fabp/bio/generate.hpp"
#include "fabp/core/bitscan.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;

// The swar64 substrate with the carry-save extensions: csa() is the
// two-instruction portable full adder (the VPTERNLOGQ 0x96/0xE8 pair the
// real kernel emits), popcount_total() the scalar census.
struct CsaSwar64Traits {
  using Vec = std::uint64_t;
  static constexpr unsigned kWords = 1;
  static Vec zero() noexcept { return 0; }
  static Vec broadcast(std::uint64_t x) noexcept { return x; }
  static Vec load_bits(const std::uint64_t* plane, std::size_t w,
                       unsigned s) noexcept {
    const std::uint64_t lo = plane[w] >> s;
    return s == 0 ? lo : lo | (plane[w + 1] << (64 - s));
  }
  static Vec and_(Vec a, Vec b) noexcept { return a & b; }
  static Vec or_(Vec a, Vec b) noexcept { return a | b; }
  static Vec xor_(Vec a, Vec b) noexcept { return a ^ b; }
  static Vec andnot(Vec a, Vec b) noexcept { return ~a & b; }
  static Vec not_(Vec a) noexcept { return ~a; }
  static bool any(Vec a) noexcept { return a != 0; }
  static void store(std::uint64_t* dst, Vec v) noexcept { dst[0] = v; }
  static void csa(Vec& high, Vec& low, Vec a, Vec b, Vec c) noexcept {
    const Vec ab = a ^ b;
    low = ab ^ c;
    high = (a & b) | (c & ab);
  }
  static unsigned popcount_total(Vec v) noexcept {
    return static_cast<unsigned>(std::popcount(v));
  }
};

std::vector<BackElement> random_elements(std::size_t n,
                                         util::Xoshiro256& rng) {
  std::vector<BackElement> q;
  q.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.next() % 3) {
      case 0:
        q.push_back(BackElement::make_exact(bio::nucleotide_from_code(
            static_cast<std::uint8_t>(rng.next() % 4))));
        break;
      case 1:
        q.push_back(BackElement::make_conditional(
            static_cast<Condition>(rng.next() % 4)));
        break;
      default:
        q.push_back(BackElement::make_dependent(
            static_cast<Function>(rng.next() % 4)));
        break;
    }
  }
  return q;
}

std::vector<Hit> csa_hits(const BitScanQuery& query,
                          const BitScanReference& reference,
                          std::uint32_t threshold) {
  std::vector<Hit> hits;
  if (query.empty() || reference.size() < query.size()) return hits;
  detail::scan_range_t<CsaSwar64Traits, true>(
      query, reference, threshold, 0, reference.size() - query.size() + 1,
      hits);
  return hits;
}

TEST(ScanCsa, MatchesGoldenOnRandomCases) {
  util::Xoshiro256 rng{401};
  for (int trial = 0; trial < 12; ++trial) {
    const auto query = random_elements(1 + rng.next() % 40, rng);
    const NucleotideSequence ref =
        bio::random_dna(query.size() + rng.next() % 1500, rng);
    const BitScanQuery compiled{query};
    const BitScanReference reference{ref};
    for (std::uint32_t t :
         {0u, static_cast<std::uint32_t>(query.size() / 2),
          static_cast<std::uint32_t>(query.size())}) {
      EXPECT_EQ(csa_hits(compiled, reference, t), golden_hits(query, ref, t))
          << "trial=" << trial << " t=" << t;
    }
  }
}

TEST(ScanCsa, OddAndEvenQueryLengthsAgree) {
  // The compressor consumes elements two at a time; the odd tail takes
  // the plain ripple path.  Cover both parities around the pairing
  // boundary, including qlen 1 (no pair at all) and 2 (one pair, no
  // tail).
  util::Xoshiro256 rng{409};
  const NucleotideSequence ref = bio::random_dna(900, rng);
  for (std::size_t qlen : {1u, 2u, 3u, 4u, 15u, 16u, 17u, 31u, 32u, 33u}) {
    const auto query = random_elements(qlen, rng);
    const BitScanQuery compiled{query};
    const BitScanReference reference{ref};
    for (std::uint32_t t : {0u, static_cast<std::uint32_t>(qlen / 2),
                            static_cast<std::uint32_t>(qlen)}) {
      EXPECT_EQ(csa_hits(compiled, reference, t), golden_hits(query, ref, t))
          << "qlen=" << qlen << " t=" << t;
    }
  }
}

TEST(ScanCsa, HighThresholdsExerciseTheEarlyExit) {
  // Thresholds at or near qlen make most random blocks provably hitless
  // well before the last element, so the feasibility census actually
  // fires; the hit lists must nonetheless stay exact — including the
  // planted perfect-score gene the exit must NOT discard.
  util::Xoshiro256 rng{419};
  const std::size_t qlen = 48;  // three check strides deep
  const auto query = random_elements(qlen, rng);
  NucleotideSequence ref = bio::random_dna(4000, rng);
  // Plant an exact match of the query so a full-score hit survives the
  // exit logic at every threshold.
  std::vector<bio::Nucleotide> exact;
  for (const BackElement& e : query) {
    bio::Nucleotide n = bio::Nucleotide::A;
    for (std::uint8_t c = 0; c < 4; ++c) {
      const bio::Nucleotide cand = bio::nucleotide_from_code(c);
      const std::size_t at = exact.size();
      const bio::Nucleotide p1 = at >= 1 ? exact[at - 1] : bio::Nucleotide::A;
      const bio::Nucleotide p2 = at >= 2 ? exact[at - 2] : bio::Nucleotide::A;
      if (e.matches(cand, p1, p2)) {
        n = cand;
        break;
      }
    }
    exact.push_back(n);
  }
  for (std::size_t i = 0; i < exact.size(); ++i) ref[2000 + i] = exact[i];

  const BitScanQuery compiled{query};
  const BitScanReference reference{ref};
  for (std::uint32_t t :
       {static_cast<std::uint32_t>(qlen * 3 / 4),
        static_cast<std::uint32_t>(qlen - 1),
        static_cast<std::uint32_t>(qlen)}) {
    const auto golden = golden_hits(query, ref, t);
    EXPECT_EQ(csa_hits(compiled, reference, t), golden) << "t=" << t;
    EXPECT_FALSE(golden.empty()) << "planted gene missing at t=" << t;
  }
}

TEST(ScanCsa, BlockBoundaryAndGuardWordSizes) {
  util::Xoshiro256 rng{421};
  const auto query = random_elements(12, rng);
  for (std::size_t size :
       {12u, 13u, 63u, 64u, 65u, 75u, 127u, 128u, 129u, 255u, 256u, 257u,
        320u, 511u, 512u, 513u, 1023u, 1024u, 1025u}) {
    const NucleotideSequence ref = bio::random_dna(size, rng);
    const BitScanQuery compiled{query};
    const BitScanReference reference{ref};
    for (std::uint32_t t : {0u, 6u, 12u}) {
      EXPECT_EQ(csa_hits(compiled, reference, t), golden_hits(query, ref, t))
          << "size=" << size << " t=" << t;
    }
  }
}

TEST(ScanCsa, BatchMatchesPerQueryScans) {
  util::Xoshiro256 rng{431};
  const NucleotideSequence ref = bio::random_dna(3000, rng);
  const BitScanReference reference{ref};

  std::vector<BitScanQuery> queries;
  std::vector<std::uint32_t> thresholds;
  std::vector<std::vector<BackElement>> raw;
  for (std::size_t q = 0; q < 9; ++q) {
    raw.push_back(random_elements(1 + rng.next() % 50, rng));
    queries.emplace_back(raw.back());
    thresholds.push_back(
        static_cast<std::uint32_t>(rng.next() % (raw.back().size() + 2)));
  }

  std::vector<std::vector<Hit>> outs(queries.size());
  detail::scan_batch_t<CsaSwar64Traits, true>(
      queries.data(), thresholds.data(), queries.size(), reference, 0,
      ref.size(), outs.data());
  for (std::size_t q = 0; q < queries.size(); ++q)
    EXPECT_EQ(outs[q], golden_hits(raw[q], ref, thresholds[q])) << "q=" << q;
}

}  // namespace
}  // namespace fabp::core
