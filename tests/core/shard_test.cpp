// Shard router differential suite (DESIGN.md §4e): the sharded backend
// must be hit-for-hit identical to the unsharded backend for every shard
// count, backend kind and strand — with exact-match windows planted
// *straddling every shard boundary* so the halo/rebase math is actually
// exercised, not just the easy interior.  Plus fault isolation: one bad
// card must not perturb its peers, and a degraded card's slice falls back
// to software with correct global offsets.

#include "fabp/core/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "fabp/bio/codon.hpp"
#include "fabp/bio/generate.hpp"
#include "fabp/core/engine.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;

// One concrete DNA realization of the query: the first codon of every
// residue.  By the back-translation wildcard construction every position's
// element class contains this base, so the planted window scores the full
// 3 x residues elements.
std::vector<bio::Nucleotide> realization(const ProteinSequence& query) {
  std::vector<bio::Nucleotide> bases;
  bases.reserve(query.size() * 3);
  for (const bio::AminoAcid aa : query) {
    const bio::Codon codon = bio::codons_for(aa)[0];
    bases.push_back(codon.first);
    bases.push_back(codon.second);
    bases.push_back(codon.third);
  }
  return bases;
}

void plant(NucleotideSequence& ref, const std::vector<bio::Nucleotide>& dna,
           std::size_t position) {
  for (std::size_t i = 0; i < dna.size(); ++i)
    ref.bases()[position + i] = dna[i];
}

void plant_reverse(NucleotideSequence& ref,
                   const std::vector<bio::Nucleotide>& dna,
                   std::size_t position) {
  // Writing RC(dna) at forward position p puts `dna` on the RC strand with
  // mapped forward window coordinate exactly p.
  const NucleotideSequence rc =
      NucleotideSequence{bio::SeqKind::Dna, dna}.reverse_complement();
  for (std::size_t i = 0; i < rc.size(); ++i)
    ref.bases()[position + i] = rc[i];
}

// A reference with exact-match windows planted around every boundary of an
// N-shard partition: windows starting just before a boundary (straddling
// into the next shard's slice via the halo), exactly at it, and mid-window
// across it — plus the very first and very last window of the reference.
// Returns the forward planted positions that survived overlap dropping.
std::vector<std::size_t> plant_boundaries(NucleotideSequence& ref,
                                          const ProteinSequence& query,
                                          std::size_t shard_count) {
  const std::vector<bio::Nucleotide> dna = realization(query);
  const std::size_t window = dna.size();
  const std::size_t total = ref.size();
  std::vector<std::size_t> wanted{0, total - window};
  for (std::size_t s = 1; s < shard_count; ++s) {
    const std::size_t boundary = s * total / shard_count;
    if (boundary >= window) wanted.push_back(boundary - 1);
    if (boundary >= window / 2) wanted.push_back(boundary - window / 2);
    if (boundary + window <= total) wanted.push_back(boundary);
  }
  std::sort(wanted.begin(), wanted.end());
  std::vector<std::size_t> planted;
  for (const std::size_t position : wanted) {
    if (!planted.empty() && position < planted.back() + window)
      continue;  // overlapping plantings would clobber each other
    plant(ref, dna, position);
    planted.push_back(position);
  }
  return planted;
}

std::uint32_t exactish_threshold(const ProteinSequence& query) {
  // 90% of elements: planted exact windows (full score) always clear it,
  // random background rarely does — both engines see the same reference,
  // so equality is exact either way.
  return static_cast<std::uint32_t>(query.size() * 3 * 9 / 10);
}

EngineConfig sharded_config(BackendKind kind, std::size_t shard_count) {
  EngineConfig config;
  config.backend = kind;
  config.host.search_both_strands = true;
  config.shard.shard_count = shard_count;
  config.shard.max_query_elements = 64;  // small halo: boundaries matter
  return config;
}

// --- halo/rebase differential -------------------------------------------

TEST(Shard, BoundaryStraddlingAllBackendsAllCounts) {
  util::Xoshiro256 rng{4242};
  const ProteinSequence query = bio::random_protein(10, rng);  // 30 elements
  const ProteinSequence other = bio::random_protein(7, rng);

  for (const std::size_t shard_count : {std::size_t{1}, std::size_t{2},
                                        std::size_t{3}, std::size_t{8}}) {
    // 6007 elements: every shard slice is ragged, the last one short.
    NucleotideSequence ref = bio::random_dna(6007, rng);
    const std::vector<std::size_t> planted =
        plant_boundaries(ref, query, shard_count);
    // Reverse-strand boundary coverage: an RC window straddling the middle
    // boundary (away from the forward plantings).
    const std::size_t rc_position = 6007 / 2 + 211;
    plant_reverse(ref, realization(query), rc_position);

    for (const BackendKind kind :
         {BackendKind::HwSim, BackendKind::Tiled, BackendKind::Planes}) {
      EngineConfig unsharded = sharded_config(kind, 1);
      unsharded.shard.shard_count = 1;
      Engine truth{unsharded};
      truth.upload_reference(NucleotideSequence{ref});

      Engine engine{sharded_config(kind, shard_count)};
      engine.upload_reference(NucleotideSequence{ref});
      EXPECT_EQ(engine.shard_count(), shard_count);

      for (const ProteinSequence& q : {query, other}) {
        Expected<HostRunReport> expected =
            truth.align_sync(q, exactish_threshold(q));
        Expected<HostRunReport> actual =
            engine.align_sync(q, exactish_threshold(q));
        ASSERT_TRUE(expected.has_value());
        ASSERT_TRUE(actual.has_value())
            << to_string(kind) << " shards=" << shard_count;
        EXPECT_EQ(actual->hits, expected->hits)
            << to_string(kind) << " shards=" << shard_count;
        EXPECT_EQ(actual->reverse_hits, expected->reverse_hits)
            << to_string(kind) << " shards=" << shard_count;
      }

      // The planted boundary windows actually surfaced (halo coverage).
      Expected<HostRunReport> report =
          engine.align_sync(query, exactish_threshold(query));
      ASSERT_TRUE(report.has_value());
      for (const std::size_t position : planted)
        EXPECT_TRUE(std::any_of(report->hits.begin(), report->hits.end(),
                                [&](const Hit& hit) {
                                  return hit.position == position;
                                }))
            << "missing planted hit at " << position << " kind "
            << to_string(kind) << " shards=" << shard_count;
      EXPECT_TRUE(std::any_of(report->reverse_hits.begin(),
                              report->reverse_hits.end(), [&](const Hit& hit) {
                                return hit.position == rc_position;
                              }))
          << "missing planted RC hit, kind " << to_string(kind)
          << " shards=" << shard_count;
    }
  }
}

TEST(Shard, BatchPrecomputePathsMatchUnsharded) {
  util::Xoshiro256 rng{515};
  NucleotideSequence ref = bio::random_dna(8192, rng);
  std::vector<ProteinSequence> queries;
  for (std::size_t i = 0; i < 6; ++i)
    queries.push_back(bio::random_protein(6 + i, rng));
  plant_boundaries(ref, queries[0], 3);

  for (const BackendKind kind : {BackendKind::Tiled, BackendKind::HwSim}) {
    Engine truth{sharded_config(kind, 1)};
    truth.upload_reference(NucleotideSequence{ref});
    Engine engine{sharded_config(kind, 3)};
    engine.upload_reference(NucleotideSequence{ref});

    // align_batch_sync: scan_batch precompute + scattered precomputed
    // lists through run().
    Expected<BatchReport> expected = truth.align_batch_sync(queries, 0.5);
    Expected<BatchReport> actual = engine.align_batch_sync(queries, 0.5);
    ASSERT_TRUE(expected.has_value());
    ASSERT_TRUE(actual.has_value()) << to_string(kind);
    ASSERT_EQ(actual->per_query.size(), expected->per_query.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(actual->per_query[i].hits, expected->per_query[i].hits)
          << to_string(kind) << " query " << i;
      EXPECT_EQ(actual->per_query[i].reverse_hits,
                expected->per_query[i].reverse_hits)
          << to_string(kind) << " query " << i;
    }

    // software_hits / software_hits_batch (scan_one + forward scan_batch).
    std::vector<std::uint32_t> thresholds;
    for (const ProteinSequence& q : queries)
      thresholds.push_back(static_cast<std::uint32_t>(q.size() * 3 / 2));
    EXPECT_EQ(engine.software_hits_batch(queries, thresholds),
              truth.software_hits_batch(queries, thresholds))
        << to_string(kind);
    EXPECT_EQ(engine.software_hits(queries[0], thresholds[0]),
              truth.software_hits(queries[0], thresholds[0]))
        << to_string(kind);
  }
}

// Raw RC coordinates (the precompute contract): the sharded scan_batch
// must reproduce the unsharded raw reverse list — descending-shard
// concatenation with the S - slice_end shift.
TEST(Shard, RawReverseScanBatchMatchesUnsharded) {
  util::Xoshiro256 rng{616};
  const NucleotideSequence ref = bio::random_dna(5000, rng);
  const bio::PackedNucleotides packed{ref};

  std::vector<CompiledQueryPtr> queries;
  std::vector<std::uint32_t> thresholds;
  for (std::size_t i = 0; i < 4; ++i) {
    queries.push_back(compile_query(bio::random_protein(5 + i, rng)));
    thresholds.push_back(
        static_cast<std::uint32_t>(queries.back()->size() / 2));
  }

  HostConfig config;
  config.search_both_strands = true;
  ReferenceStore store;
  store.upload(packed, true);
  std::unique_ptr<ScanBackend> unsharded =
      make_backend(BackendKind::Tiled, config, store);

  for (const std::size_t shard_count : {std::size_t{1}, std::size_t{2},
                                        std::size_t{3}, std::size_t{8}}) {
    ShardConfig shard;
    shard.shard_count = shard_count;
    shard.max_query_elements = 64;
    ReferenceStore sharded_store;
    std::unique_ptr<ShardedBackend> sharded = make_sharded_backend(
        BackendKind::Tiled, config, sharded_store, shard);
    sharded_store.upload(packed, true);
    sharded->invalidate();

    for (const bool reverse : {false, true})
      EXPECT_EQ(sharded->scan_batch(queries, thresholds, reverse, nullptr),
                unsharded->scan_batch(queries, thresholds, reverse, nullptr))
          << "shards=" << shard_count << " reverse=" << reverse;
  }
}

// Concurrent coalesced serving through the router — the tsan leg target.
TEST(Shard, CoalescedConcurrentSubmitMatchesSequential) {
  util::Xoshiro256 rng{717};
  const NucleotideSequence ref = bio::random_dna(20000, rng);
  std::vector<ProteinSequence> queries;
  for (std::size_t i = 0; i < 8; ++i)
    queries.push_back(bio::random_protein(6 + i % 5, rng));
  const auto threshold = [](const ProteinSequence& q) {
    return static_cast<std::uint32_t>(q.size() * 3 / 2);
  };

  Engine truth{sharded_config(BackendKind::HwSim, 1)};
  truth.upload_reference(NucleotideSequence{ref});
  std::vector<std::vector<Hit>> expected_fwd, expected_rev;
  for (const ProteinSequence& q : queries) {
    Expected<HostRunReport> report = truth.align_sync(q, threshold(q));
    ASSERT_TRUE(report.has_value());
    expected_fwd.push_back(report->hits);
    expected_rev.push_back(report->reverse_hits);
  }

  Engine engine{sharded_config(BackendKind::HwSim, 3)};
  engine.upload_reference(NucleotideSequence{ref});
  constexpr std::size_t kRequests = 48;
  std::vector<Ticket> tickets;
  tickets.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const ProteinSequence& q = queries[i % queries.size()];
    tickets.push_back(engine.submit(q, threshold(q)));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    Expected<HostRunReport> outcome = tickets[i].wait();
    ASSERT_TRUE(outcome.has_value()) << "request " << i;
    EXPECT_EQ(outcome->hits, expected_fwd[i % queries.size()]);
    EXPECT_EQ(outcome->reverse_hits, expected_rev[i % queries.size()]);
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, kRequests);

  // Router status after draining: every shard executed work, queues empty.
  const std::vector<ShardStatus> status = engine.shard_status();
  ASSERT_EQ(status.size(), 3u);
  for (const ShardStatus& shard : status) {
    EXPECT_GT(shard.batches_executed, 0u) << "shard " << shard.index;
    EXPECT_EQ(shard.queue_depth, 0u) << "shard " << shard.index;
    EXPECT_GE(shard.peak_queue_depth, 1u) << "shard " << shard.index;
  }
}

// --- typed errors --------------------------------------------------------

TEST(Shard, OversizedQueryIsTypedBadArgument) {
  util::Xoshiro256 rng{818};
  const NucleotideSequence ref = bio::random_dna(4000, rng);
  EngineConfig config = sharded_config(BackendKind::Tiled, 2);
  config.shard.max_query_elements = 30;  // 10 residues
  Engine engine{config};
  engine.upload_reference(NucleotideSequence{ref});

  const ProteinSequence big = bio::random_protein(20, rng);  // 60 elements
  Expected<HostRunReport> outcome = engine.align_sync(big, 10);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::BadArgument);
  EXPECT_THROW(engine.software_hits(big, 10), std::invalid_argument);

  // A query that fits still works.
  const ProteinSequence small = bio::random_protein(8, rng);
  EXPECT_TRUE(engine.align_sync(small, 10).has_value());
}

TEST(Shard, ConfigValidation) {
  EXPECT_EQ(validate_shard_config(ShardConfig{}).code, ErrorCode::None);
  ShardConfig zero;
  zero.shard_count = 0;
  EXPECT_EQ(validate_shard_config(zero).code, ErrorCode::InvalidConfig);
  ShardConfig absurd;
  absurd.shard_count = 65;
  EXPECT_EQ(validate_shard_config(absurd).code, ErrorCode::InvalidConfig);
  ShardConfig bad_halo;
  bad_halo.max_query_elements = 0;
  EXPECT_EQ(validate_shard_config(bad_halo).code, ErrorCode::InvalidConfig);
  ShardConfig bad_chaos;
  bad_chaos.shard_count = 2;
  bad_chaos.fault_only_shard = 2;
  EXPECT_EQ(validate_shard_config(bad_chaos).code, ErrorCode::InvalidConfig);

  EngineConfig config;
  config.shard.shard_count = 0;
  EXPECT_THROW(Engine{config}, FaultError);
}

TEST(Shard, UnshardedEngineHasNoRouter) {
  Engine engine{EngineConfig{}};
  EXPECT_EQ(engine.shard_count(), 1u);
  EXPECT_TRUE(engine.shard_status().empty());
  EXPECT_EQ(engine.shard_overhead_seconds(), 0.0);
}

// --- chaos ---------------------------------------------------------------

// Faults injected into ONE shard's stream: results stay golden (recovery
// repairs them) and the other shards' cards log zero fault events.
TEST(ShardChaos, FaultIsolationSingleShard) {
  util::Xoshiro256 rng{919};
  const NucleotideSequence ref = bio::random_dna(12000, rng);
  std::vector<ProteinSequence> queries;
  for (std::size_t i = 0; i < 4; ++i)
    queries.push_back(bio::random_protein(8, rng));

  Engine truth{sharded_config(BackendKind::Tiled, 1)};
  truth.upload_reference(NucleotideSequence{ref});

  EngineConfig config = sharded_config(BackendKind::HwSim, 3);
  config.host.fault.flip_rate = 3e-4;
  config.host.fault.drop_rate = 1e-3;
  config.shard.fault_only_shard = 1;
  Engine engine{config};
  engine.upload_reference(NucleotideSequence{ref});

  for (const ProteinSequence& q : queries) {
    const std::uint32_t threshold =
        static_cast<std::uint32_t>(q.size() * 3 / 2);
    Expected<HostRunReport> expected = truth.align_sync(q, threshold);
    Expected<HostRunReport> actual = engine.align_sync(q, threshold);
    ASSERT_TRUE(expected.has_value());
    ASSERT_TRUE(actual.has_value());
    EXPECT_EQ(actual->hits, expected->hits);
    EXPECT_EQ(actual->reverse_hits, expected->reverse_hits);
  }

  const std::vector<ShardStatus> status = engine.shard_status();
  ASSERT_EQ(status.size(), 3u);
  EXPECT_GT(status[1].fault_events, 0u) << "chaos shard saw no faults";
  EXPECT_EQ(status[0].fault_events, 0u) << "fault leaked to shard 0";
  EXPECT_EQ(status[2].fault_events, 0u) << "fault leaked to shard 2";
  EXPECT_GT(status[1].recovery.retries + status[1].recovery.crc_faults +
                status[1].recovery.rescanned_tiles,
            0u);
  EXPECT_EQ(status[0].health, HealthState::Healthy);
  EXPECT_EQ(status[2].health, HealthState::Healthy);
}

// A shard whose card dies degrades and its slice is shed to the software
// fallback: requests keep succeeding with correct *global* offsets (a hit
// planted inside the degraded shard's owned range must surface), while the
// healthy shards keep serving their slices on the primary path.
TEST(ShardChaos, DegradedShardFallsBackToSoftware) {
  util::Xoshiro256 rng{1020};
  const ProteinSequence query = bio::random_protein(10, rng);
  NucleotideSequence ref = bio::random_dna(9000, rng);
  // Inside shard 1 of 3's owned range [3000, 6000).
  const std::size_t planted_position = 4444;
  plant(ref, realization(query), planted_position);

  Engine truth{sharded_config(BackendKind::Tiled, 1)};
  truth.upload_reference(NucleotideSequence{ref});

  EngineConfig config = sharded_config(BackendKind::HwSim, 3);
  config.host.fault.transfer_fail_rate = 1.0;  // the card never transfers
  config.shard.fault_only_shard = 1;
  config.host.recovery.max_attempts = 2;
  config.host.recovery.degrade_after = 1;
  Engine engine{config};
  engine.upload_reference(NucleotideSequence{ref});

  for (std::size_t round = 0; round < 3; ++round) {
    Expected<HostRunReport> expected =
        truth.align_sync(query, exactish_threshold(query));
    Expected<HostRunReport> actual =
        engine.align_sync(query, exactish_threshold(query));
    ASSERT_TRUE(expected.has_value());
    ASSERT_TRUE(actual.has_value()) << "round " << round;
    EXPECT_EQ(actual->hits, expected->hits) << "round " << round;
    EXPECT_EQ(actual->reverse_hits, expected->reverse_hits)
        << "round " << round;
    EXPECT_TRUE(std::any_of(
        actual->hits.begin(), actual->hits.end(),
        [&](const Hit& hit) { return hit.position == planted_position; }))
        << "round " << round;
    if (round > 0) EXPECT_GT(actual->recovery.fallbacks, 0u);
  }

  const std::vector<ShardStatus> status = engine.shard_status();
  ASSERT_EQ(status.size(), 3u);
  EXPECT_EQ(status[1].health, HealthState::Degraded);
  EXPECT_TRUE(status[1].routed_to_fallback);
  EXPECT_GT(status[1].fallback_batches, 0u);
  EXPECT_EQ(status[0].health, HealthState::Healthy);
  EXPECT_EQ(status[2].health, HealthState::Healthy);
  EXPECT_EQ(status[0].fallback_batches, 0u);
  EXPECT_EQ(status[2].fallback_batches, 0u);
  EXPECT_EQ(engine.health(), HealthState::Degraded);
}

TEST(ShardChaos, DegradedWithoutFallbackIsDeviceLost) {
  util::Xoshiro256 rng{1121};
  const NucleotideSequence ref = bio::random_dna(6000, rng);
  EngineConfig config = sharded_config(BackendKind::HwSim, 2);
  config.host.fault.transfer_fail_rate = 1.0;
  config.shard.fault_only_shard = 0;
  config.host.recovery.allow_software_fallback = false;
  config.host.recovery.max_attempts = 2;
  config.host.recovery.degrade_after = 1;
  Engine engine{config};
  engine.upload_reference(NucleotideSequence{ref});

  const ProteinSequence query = bio::random_protein(8, rng);
  Expected<HostRunReport> first = engine.align_sync(query, 12);
  ASSERT_FALSE(first.has_value());
  Expected<HostRunReport> second = engine.align_sync(query, 12);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, ErrorCode::DeviceLost);
}

// --- stats aggregation ---------------------------------------------------

TEST(ShardStats, PipelineAggregatesAcrossShards) {
  util::Xoshiro256 rng{1222};
  const NucleotideSequence ref = bio::random_dna(16000, rng);
  std::vector<ProteinSequence> queries;
  for (std::size_t i = 0; i < 8; ++i)
    queries.push_back(bio::random_protein(6 + i % 4, rng));

  Engine engine{sharded_config(BackendKind::HwSim, 4)};
  engine.upload_reference(NucleotideSequence{ref});
  Expected<BatchReport> batch = engine.align_batch_sync(queries, 0.5);
  ASSERT_TRUE(batch.has_value());

  const DevicePipelineStats merged = engine.pipeline_stats();
  const std::vector<ShardStatus> status = engine.shard_status();
  ASSERT_EQ(status.size(), 4u);

  std::size_t invocations = 0, tasks = 0, pe = 0;
  double serial = 0.0, pipelined = 0.0, transfer = 0.0;
  for (const ShardStatus& shard : status) {
    invocations += shard.pipeline.invocations;
    tasks = std::max(tasks, shard.pipeline.tasks);
    pe += shard.pipeline.pe_count;
    serial += shard.pipeline.serial_s;
    transfer += shard.pipeline.transfer_s;
    pipelined = std::max(pipelined, shard.pipeline.pipelined_s);
    EXPECT_GT(shard.pipeline.invocations, 0u) << "shard " << shard.index;
  }
  EXPECT_EQ(merged.invocations, invocations);
  EXPECT_EQ(merged.tasks, tasks);
  EXPECT_EQ(merged.tasks, queries.size());
  EXPECT_EQ(merged.pe_count, pe);
  EXPECT_DOUBLE_EQ(merged.serial_s, serial);
  EXPECT_DOUBLE_EQ(merged.transfer_s, transfer);
  EXPECT_DOUBLE_EQ(merged.pipelined_s, pipelined);
  EXPECT_GT(merged.modeled_qps(), 0.0);
  EXPECT_GE(engine.shard_overhead_seconds(), 0.0);
}

}  // namespace
}  // namespace fabp::core
