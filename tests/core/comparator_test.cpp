#include "fabp/core/comparator.hpp"

#include <gtest/gtest.h>

namespace fabp::core {
namespace {

using bio::Nucleotide;

std::vector<BackElement> all_valid_elements() {
  std::vector<BackElement> out;
  for (Nucleotide n : bio::kAllNucleotides)
    out.push_back(BackElement::make_exact(n));
  for (auto c : {Condition::UorC, Condition::AorG, Condition::NotG,
                 Condition::AorC})
    out.push_back(BackElement::make_conditional(c));
  for (auto f : {Function::Stop3, Function::Leu3, Function::Arg3,
                 Function::AnyD})
    out.push_back(BackElement::make_dependent(f));
  return out;
}

TEST(ComparatorLuts, ExactlyTwoLutsPerCell) {
  hw::Netlist nl;
  build_comparator(nl);
  EXPECT_EQ(nl.stats().luts, 2u);  // the paper's headline claim (§III-D)
}

TEST(ComparatorLuts, InitVectorsAreStable) {
  // The generated INITs are deterministic; pin them so accidental changes
  // to the spec functions are caught.
  EXPECT_EQ(comparator_mux_lut(), comparator_mux_lut());
  EXPECT_EQ(comparator_cmp_lut(), comparator_cmp_lut());
  EXPECT_NE(comparator_mux_lut().init(), 0u);
  EXPECT_NE(comparator_cmp_lut().init(), 0u);
}

TEST(ComparatorEval, MatchesBehavioralModelExhaustively) {
  // Every valid instruction x every reference element x every pair of
  // history nucleotides: the two-LUT cell must reproduce
  // BackElement::matches exactly.  12 * 4 * 4 * 4 = 768 combinations.
  for (const BackElement& e : all_valid_elements()) {
    const Instruction instr = Instruction::encode(e);
    for (Nucleotide ref : bio::kAllNucleotides)
      for (Nucleotide im1 : bio::kAllNucleotides)
        for (Nucleotide im2 : bio::kAllNucleotides)
          EXPECT_EQ(comparator_eval(instr, ref, im1, im2),
                    e.matches(ref, im1, im2))
              << instr.to_binary_string() << " ref "
              << bio::to_char_rna(ref) << " im1 " << bio::to_char_rna(im1)
              << " im2 " << bio::to_char_rna(im2);
  }
}

TEST(ComparatorEval, Figure5bConditionalColumn) {
  // The highlighted column of Fig. 5(b): instruction 01-00-00 (U/C)
  // matches reference U and C only.
  const Instruction instr{0b010000};
  EXPECT_FALSE(comparator_eval(instr, Nucleotide::A, Nucleotide::A,
                               Nucleotide::A));
  EXPECT_TRUE(comparator_eval(instr, Nucleotide::C, Nucleotide::A,
                              Nucleotide::A));
  EXPECT_FALSE(comparator_eval(instr, Nucleotide::G, Nucleotide::A,
                               Nucleotide::A));
  EXPECT_TRUE(comparator_eval(instr, Nucleotide::U, Nucleotide::A,
                              Nucleotide::A));
}

TEST(ComparatorEval, Figure5bExactColumns) {
  // 00-A (000000): matches A only; 00-G (001000): matches G only.
  for (Nucleotide ref : bio::kAllNucleotides) {
    EXPECT_EQ(comparator_eval(Instruction{0b000000}, ref, Nucleotide::A,
                              Nucleotide::A),
              ref == Nucleotide::A);
    EXPECT_EQ(comparator_eval(Instruction{0b001000}, ref, Nucleotide::A,
                              Nucleotide::A),
              ref == Nucleotide::G);
  }
}

TEST(ComparatorEval, Figure5bDependentStopColumns) {
  // 1-00 (Stop3), S = MSB of ref[i-1]:
  //   S=0 rows: A->1 C->0 G->1 U->0 ;  S=1 rows: A->1 C->0 G->0 U->0.
  const Instruction stop3 =
      Instruction::encode(BackElement::make_dependent(Function::Stop3));
  const auto eval_with_s0 = [&](Nucleotide ref) {
    return comparator_eval(stop3, ref, Nucleotide::A, Nucleotide::A);
  };
  const auto eval_with_s1 = [&](Nucleotide ref) {
    return comparator_eval(stop3, ref, Nucleotide::G, Nucleotide::A);
  };
  EXPECT_TRUE(eval_with_s0(Nucleotide::A));
  EXPECT_FALSE(eval_with_s0(Nucleotide::C));
  EXPECT_TRUE(eval_with_s0(Nucleotide::G));
  EXPECT_FALSE(eval_with_s0(Nucleotide::U));
  EXPECT_TRUE(eval_with_s1(Nucleotide::A));
  EXPECT_FALSE(eval_with_s1(Nucleotide::C));
  EXPECT_FALSE(eval_with_s1(Nucleotide::G));
  EXPECT_FALSE(eval_with_s1(Nucleotide::U));
}

TEST(ComparatorEval, Figure5bDColumnAllOnes) {
  const Instruction d =
      Instruction::encode(BackElement::make_dependent(Function::AnyD));
  for (Nucleotide ref : bio::kAllNucleotides)
    for (Nucleotide im1 : bio::kAllNucleotides)
      for (Nucleotide im2 : bio::kAllNucleotides)
        EXPECT_TRUE(comparator_eval(d, ref, im1, im2));
}

TEST(ComparatorNetlist, MatchesPureEvalExhaustively) {
  // The structural netlist (two LUT cells + wires) against the pure
  // two-LUT evaluation, over the full input cross product including
  // raw history bits.
  hw::Netlist nl;
  const ComparatorPorts ports = build_comparator(nl);

  for (const BackElement& e : all_valid_elements()) {
    const Instruction instr = Instruction::encode(e);
    for (std::uint8_t ref = 0; ref < 4; ++ref)
      for (int h = 0; h < 8; ++h) {
        const bool im1_msb = h & 1, im2_msb = (h >> 1) & 1,
                   im2_lsb = (h >> 2) & 1;
        for (unsigned b = 0; b < 6; ++b)
          nl.set_input(ports.q[b], instr.bit(b));
        nl.set_input(ports.ref0, ref & 1);
        nl.set_input(ports.ref1, (ref >> 1) & 1);
        nl.set_input(ports.ref_im1_msb, im1_msb);
        nl.set_input(ports.ref_im2_msb, im2_msb);
        nl.set_input(ports.ref_im2_lsb, im2_lsb);
        nl.settle();
        EXPECT_EQ(nl.value(ports.match),
                  comparator_eval(instr, ref, im1_msb, im2_msb, im2_lsb))
            << instr.to_binary_string() << " ref=" << int(ref)
            << " h=" << h;
      }
  }
}

TEST(ComparatorNetlist, ArrayOfCellsSharesNothing) {
  // Building N cells costs exactly 2N LUTs (no hidden sharing).
  hw::Netlist nl;
  for (int i = 0; i < 10; ++i) build_comparator(nl);
  EXPECT_EQ(nl.stats().luts, 20u);
}

}  // namespace
}  // namespace fabp::core
