#include "fabp/core/querypack.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"

namespace fabp::core {
namespace {

TEST(PackedQuery, EmptyQuery) {
  PackedQuery p{EncodedQuery{}};
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.byte_size(), 0u);
}

TEST(PackedQuery, RoundTripRandomQueries) {
  util::Xoshiro256 rng{601};
  for (std::size_t residues : {1u, 10u, 11u, 50u, 250u}) {
    const EncodedQuery query =
        encode_query(bio::random_protein(residues, rng));
    const PackedQuery packed{query};
    EXPECT_EQ(packed.size(), query.size());
    EXPECT_EQ(packed.unpack(), query) << residues;
    for (std::size_t i = 0; i < query.size(); ++i)
      EXPECT_EQ(packed.get(i), query[i]) << residues << ":" << i;
  }
}

TEST(PackedQuery, WordStraddlingInstructions) {
  // Element 10 occupies bits 60..65: crosses the first word boundary.
  util::Xoshiro256 rng{607};
  const EncodedQuery query = encode_query(bio::random_protein(8, rng));
  ASSERT_GE(query.size(), 12u);
  const PackedQuery packed{query};
  EXPECT_EQ(packed.get(10), query[10]);
  EXPECT_EQ(packed.get(11), query[11]);
}

TEST(PackedQuery, DramFootprintMatchesPaperArithmetic) {
  // 750 elements * 6 bits = 4500 bits = 71 words = 568 bytes.
  util::Xoshiro256 rng{613};
  const PackedQuery packed{encode_query(bio::random_protein(250, rng))};
  EXPECT_EQ(packed.byte_size(), 568u);
}

TEST(PackedQuery, SixBitDensity) {
  util::Xoshiro256 rng{617};
  const EncodedQuery query = encode_query(bio::random_protein(64, rng));
  const PackedQuery packed{query};
  EXPECT_LE(packed.byte_size() * 8, query.size() * 6 + 63);
}

}  // namespace
}  // namespace fabp::core
