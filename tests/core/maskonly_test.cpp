#include "fabp/core/maskonly.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"

namespace fabp::core {
namespace {

using bio::AminoAcid;
using bio::Nucleotide;

TEST(MaskOnly, PositionMasksMatchCodonTable) {
  // Met = AUG exactly.
  EXPECT_EQ(position_mask(AminoAcid::Met, 0), 1u << bio::code(Nucleotide::A));
  EXPECT_EQ(position_mask(AminoAcid::Met, 1), 1u << bio::code(Nucleotide::U));
  EXPECT_EQ(position_mask(AminoAcid::Met, 2), 1u << bio::code(Nucleotide::G));
  // Phe third position: U or C.
  EXPECT_EQ(position_mask(AminoAcid::Phe, 2),
            (1u << bio::code(Nucleotide::U)) |
                (1u << bio::code(Nucleotide::C)));
  // Leu third position: all four (UUR + CUN).
  EXPECT_EQ(position_mask(AminoAcid::Leu, 2), 0b1111);
}

TEST(MaskOnly, MaskIsSupersetOfTemplate) {
  // Every codon the template accepts, the mask accepts too.
  for (AminoAcid aa : bio::kAllAminoAcids)
    EXPECT_GE(mask_accepted_codons(aa), template_accepted_codons(aa))
        << bio::to_three_letter(aa);
}

TEST(MaskOnly, DependentAminoAcidsOverAccept) {
  // The whole point of Type III: mask-only accepts extra codons exactly
  // for the three dependent amino acids + none elsewhere.
  for (AminoAcid aa : bio::kAllAminoAcids) {
    const std::size_t extra =
        mask_accepted_codons(aa) - template_accepted_codons(aa);
    const bool dependent = aa == AminoAcid::Leu || aa == AminoAcid::Arg ||
                           aa == AminoAcid::Stop ||
                           aa == AminoAcid::Ser;  // Ser: AGY re-enters union
    if (dependent)
      EXPECT_GT(extra, 0u) << bio::to_three_letter(aa);
    else
      EXPECT_EQ(extra, 0u) << bio::to_three_letter(aa);
  }
}

TEST(MaskOnly, ArgMaskAcceptsSerCodon) {
  // (A/C) G {any} accepts AGU, which is Ser.
  const bio::Codon agu{Nucleotide::A, Nucleotide::G, Nucleotide::U};
  EXPECT_FALSE(template_accepts(AminoAcid::Arg, agu));
  bool mask_accepts = true;
  for (std::size_t p = 0; p < 3; ++p)
    if ((position_mask(AminoAcid::Arg, p) & (1u << bio::code(agu[p]))) == 0)
      mask_accepts = false;
  EXPECT_TRUE(mask_accepts);
}

TEST(MaskOnly, ScoreDominatesGoldenScore) {
  // Mask-only can only over-match, never under-match.
  util::Xoshiro256 rng{901};
  for (int trial = 0; trial < 20; ++trial) {
    const bio::ProteinSequence protein = bio::random_protein(15, rng);
    const bio::NucleotideSequence ref = bio::random_dna(300, rng);
    const auto elements = back_translate(protein);
    const MaskQuery masks = mask_encode(protein);
    for (std::size_t p = 0; p + masks.size() <= ref.size(); p += 11)
      EXPECT_GE(mask_score_at(masks, ref, p),
                golden_score_at(elements, ref, p))
          << trial << ":" << p;
  }
}

TEST(MaskOnly, HitsSupersetOfGoldenHits) {
  util::Xoshiro256 rng{907};
  const bio::ProteinSequence protein = bio::random_protein(12, rng);
  const bio::NucleotideSequence ref = bio::random_dna(2000, rng);
  const auto golden = golden_hits(back_translate(protein), ref, 30);
  const auto masked = mask_hits(mask_encode(protein), ref, 30);
  // Every golden hit position appears among the mask hits.
  for (const Hit& g : golden) {
    bool found = false;
    for (const Hit& m : masked)
      if (m.position == g.position) found = true;
    EXPECT_TRUE(found) << g.position;
  }
  EXPECT_GE(masked.size(), golden.size());
}

TEST(MaskOnly, EncodeLengthIsThreePerResidue) {
  util::Xoshiro256 rng{911};
  const bio::ProteinSequence protein = bio::random_protein(7, rng);
  EXPECT_EQ(mask_encode(protein).size(), 21u);
}

}  // namespace
}  // namespace fabp::core
