#include "fabp/core/backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fabp/bio/generate.hpp"
#include "fabp/core/golden.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;

std::vector<Hit> backend_forward_hits(BackendKind kind,
                                      const HostConfig& config,
                                      const ReferenceStore& store,
                                      const CompiledQuery& query,
                                      std::uint32_t threshold) {
  const std::unique_ptr<ScanBackend> backend =
      make_backend(kind, config, store);
  BackendRequest request;
  request.query = &query;
  request.threshold = threshold;
  Expected<BackendRun> run = backend->run(request);
  EXPECT_TRUE(run.has_value()) << to_string(kind);
  return std::move(run).value().hits;
}

// All three backends implement the same functional contract: the hits of
// run() equal the golden behavioral scan, hit for hit.
TEST(Backend, AllKindsMatchGolden) {
  util::Xoshiro256 rng{901};
  const NucleotideSequence ref = bio::random_dna(30000, rng);
  HostConfig config;
  ReferenceStore store;
  store.upload(bio::PackedNucleotides{ref}, config.search_both_strands);

  for (std::size_t q = 0; q < 4; ++q) {
    const ProteinSequence protein = bio::random_protein(7 + q, rng);
    const CompiledQueryPtr query = compile_query(protein);
    const std::uint32_t threshold =
        static_cast<std::uint32_t>(query->size() / 2);
    const std::vector<Hit> expected =
        golden_hits(query->elements, ref, threshold);
    for (const BackendKind kind :
         {BackendKind::HwSim, BackendKind::Tiled, BackendKind::Planes})
      EXPECT_EQ(backend_forward_hits(kind, config, store, *query, threshold),
                expected)
          << to_string(kind) << " query " << q;
  }
}

// Both strands: every backend maps the reverse-complement strand's hits to
// forward window coordinates identically (golden on the RC sequence,
// remapped, defines the truth).
TEST(Backend, ReverseStrandMappingAgreesAcrossKinds) {
  util::Xoshiro256 rng{902};
  const NucleotideSequence ref = bio::random_dna(20000, rng);
  HostConfig config;
  config.search_both_strands = true;
  ReferenceStore store;
  store.upload(bio::PackedNucleotides{ref}, true);

  const ProteinSequence protein = bio::random_protein(8, rng);
  const CompiledQueryPtr query = compile_query(protein);
  const std::uint32_t threshold =
      static_cast<std::uint32_t>(query->size() / 2);

  const NucleotideSequence rc = ref.reverse_complement();
  std::vector<Hit> expected;
  for (const Hit& hit : golden_hits(query->elements, rc, threshold))
    expected.push_back(
        Hit{ref.size() - hit.position - query->size(), hit.score});
  std::sort(expected.begin(), expected.end());

  for (const BackendKind kind :
       {BackendKind::HwSim, BackendKind::Tiled, BackendKind::Planes}) {
    const std::unique_ptr<ScanBackend> backend =
        make_backend(kind, config, store);
    BackendRequest request;
    request.query = query.get();
    request.threshold = threshold;
    Expected<BackendRun> run = backend->run(request);
    ASSERT_TRUE(run.has_value()) << to_string(kind);
    EXPECT_EQ(run->reverse_hits, expected) << to_string(kind);
  }
}

// scan_batch is the coalescing precompute hook: element [q] must equal the
// strand hits run() computes for (queries[q], thresholds[q]).
TEST(Backend, ScanBatchMatchesPerQueryRuns) {
  util::Xoshiro256 rng{903};
  const NucleotideSequence ref = bio::random_dna(25000, rng);
  HostConfig config;
  ReferenceStore store;
  store.upload(bio::PackedNucleotides{ref}, false);

  std::vector<CompiledQueryPtr> queries;
  std::vector<std::uint32_t> thresholds;
  for (std::size_t q = 0; q < 5; ++q) {
    queries.push_back(compile_query(bio::random_protein(6 + q, rng)));
    thresholds.push_back(static_cast<std::uint32_t>(queries[q]->size() / 2));
  }

  for (const BackendKind kind :
       {BackendKind::HwSim, BackendKind::Tiled, BackendKind::Planes}) {
    const std::unique_ptr<ScanBackend> backend =
        make_backend(kind, config, store);
    const auto batch = backend->scan_batch(queries, thresholds, false, nullptr);
    ASSERT_EQ(batch.size(), queries.size()) << to_string(kind);
    for (std::size_t q = 0; q < queries.size(); ++q)
      EXPECT_EQ(batch[q],
                golden_hits(queries[q]->elements, ref, thresholds[q]))
          << to_string(kind) << " query " << q;
  }
}

// Re-upload + invalidate must drop every derived artifact (the planes
// backend caches whole-reference planes; stale planes would scan the old
// reference).
TEST(Backend, InvalidateDropsStalePlanes) {
  util::Xoshiro256 rng{904};
  const NucleotideSequence ref1 = bio::random_dna(15000, rng);
  const NucleotideSequence ref2 = bio::random_dna(15000, rng);
  HostConfig config;
  config.scan_path = ScanPath::Planes;
  ReferenceStore store;
  store.upload(bio::PackedNucleotides{ref1}, false);

  const CompiledQueryPtr query = compile_query(bio::random_protein(8, rng));
  const std::uint32_t threshold =
      static_cast<std::uint32_t>(query->size() / 2);

  const std::unique_ptr<ScanBackend> backend =
      make_backend(BackendKind::Planes, config, store);
  BackendRequest request;
  request.query = query.get();
  request.threshold = threshold;
  ASSERT_TRUE(backend->run(request).has_value());  // compiles ref1 planes

  store.upload(bio::PackedNucleotides{ref2}, false);
  backend->invalidate();
  Expected<BackendRun> run = backend->run(request);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->hits, golden_hits(query->elements, ref2, threshold));
}

TEST(Backend, RunWithoutReferenceIsTypedError) {
  HostConfig config;
  ReferenceStore store;  // never uploaded
  const CompiledQueryPtr query = compile_query(
      bio::ProteinSequence::parse("MFSRW"));
  for (const BackendKind kind :
       {BackendKind::HwSim, BackendKind::Tiled, BackendKind::Planes}) {
    const std::unique_ptr<ScanBackend> backend =
        make_backend(kind, config, store);
    BackendRequest request;
    request.query = query.get();
    request.threshold = 1;
    const Expected<BackendRun> run = backend->run(request);
    ASSERT_FALSE(run.has_value()) << to_string(kind);
    EXPECT_EQ(run.error().code, ErrorCode::NoReference) << to_string(kind);
  }
}

// ---------------------------------------------------------------------------
// Construction-time config validation.

TEST(HostConfigValidation, AcceptsDefaults) {
  EXPECT_EQ(validate_host_config(HostConfig{}).code, ErrorCode::None);
}

TEST(HostConfigValidation, RejectsDegenerateValues) {
  const auto rejects = [](HostConfig config) {
    const Error error = validate_host_config(config);
    EXPECT_EQ(error.code, ErrorCode::InvalidConfig) << error.message;
  };

  HostConfig zero_tile;
  zero_tile.tile.tile_positions = 0;
  rejects(zero_tile);

  HostConfig absurd_tile;
  absurd_tile.tile.tile_positions = std::size_t{1} << 31;
  rejects(absurd_tile);

  HostConfig no_bandwidth;
  no_bandwidth.pcie_bandwidth_bps = 0.0;
  rejects(no_bandwidth);

  HostConfig negative_overhead;
  negative_overhead.invoke_overhead_s = -1e-6;
  rejects(negative_overhead);

  HostConfig zero_attempts;
  zero_attempts.recovery.max_attempts = 0;
  rejects(zero_attempts);

  HostConfig absurd_attempts;
  absurd_attempts.recovery.max_attempts = 1000;
  rejects(absurd_attempts);

  HostConfig zero_degrade;
  zero_degrade.recovery.degrade_after = 0;
  rejects(zero_degrade);

  HostConfig negative_backoff;
  negative_backoff.recovery.backoff_base_s = -1.0;
  rejects(negative_backoff);

  HostConfig bad_rate;
  bad_rate.fault.drop_rate = 1.5;
  rejects(bad_rate);

  HostConfig negative_rate;
  negative_rate.fault.flip_rate = -0.1;
  rejects(negative_rate);
}

TEST(HostConfigValidation, SessionConstructorThrowsTyped) {
  HostConfig config;
  config.recovery.max_attempts = 0;
  try {
    Session session{config};
    FAIL() << "invalid config must be rejected at construction";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), ErrorCode::InvalidConfig);
  }
}

}  // namespace
}  // namespace fabp::core
