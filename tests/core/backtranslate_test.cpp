#include "fabp/core/backtranslate.hpp"

#include <gtest/gtest.h>

namespace fabp::core {
namespace {

using bio::AminoAcid;
using bio::Codon;
using bio::Nucleotide;

// The one intentional deviation from "template accepts exactly the codons
// of this amino acid": Ser's AGU/AGC are not covered (paper §III-A treats
// Ser as UCD).
bool is_dropped_ser_codon(const Codon& c) {
  return translate(c) == AminoAcid::Ser && c.first == Nucleotide::A;
}

TEST(Templates, AcceptExactlyTheRightCodons) {
  // Cross product: every template against every codon.  The template of
  // amino acid X must accept codon c iff translate(c) == X, modulo the
  // documented AGY-Ser exception.
  for (AminoAcid aa : bio::kAllAminoAcids) {
    for (std::uint8_t i = 0; i < bio::kCodonCount; ++i) {
      const Codon c = Codon::from_dense_index(i);
      bool expected = bio::translate(c) == aa;
      if (aa == AminoAcid::Ser && is_dropped_ser_codon(c)) expected = false;
      EXPECT_EQ(template_accepts(aa, c), expected)
          << bio::to_three_letter(aa) << " vs " << c.to_string();
    }
  }
}

TEST(Templates, PaperWorkedExamples) {
  // §III-A: Phe = UU(U/C); Ile = AU(G-bar); Ser = UCD;
  // Leu = (U/C)U(F:01); Arg = (A/C)G(F:10); Stop = U(A/G)(F:00).
  const CodonTemplate& phe = codon_template(AminoAcid::Phe);
  EXPECT_EQ(phe[0], BackElement::make_exact(Nucleotide::U));
  EXPECT_EQ(phe[1], BackElement::make_exact(Nucleotide::U));
  EXPECT_EQ(phe[2], BackElement::make_conditional(Condition::UorC));

  const CodonTemplate& ile = codon_template(AminoAcid::Ile);
  EXPECT_EQ(ile[2], BackElement::make_conditional(Condition::NotG));

  const CodonTemplate& ser = codon_template(AminoAcid::Ser);
  EXPECT_EQ(ser[2], BackElement::make_dependent(Function::AnyD));

  const CodonTemplate& leu = codon_template(AminoAcid::Leu);
  EXPECT_EQ(leu[0], BackElement::make_conditional(Condition::UorC));
  EXPECT_EQ(leu[1], BackElement::make_exact(Nucleotide::U));
  EXPECT_EQ(leu[2], BackElement::make_dependent(Function::Leu3));

  const CodonTemplate& arg = codon_template(AminoAcid::Arg);
  EXPECT_EQ(arg[0], BackElement::make_conditional(Condition::AorC));
  EXPECT_EQ(arg[1], BackElement::make_exact(Nucleotide::G));
  EXPECT_EQ(arg[2], BackElement::make_dependent(Function::Arg3));

  const CodonTemplate& stop = codon_template(AminoAcid::Stop);
  EXPECT_EQ(stop[0], BackElement::make_exact(Nucleotide::U));
  EXPECT_EQ(stop[1], BackElement::make_conditional(Condition::AorG));
  EXPECT_EQ(stop[2], BackElement::make_dependent(Function::Stop3));
}

TEST(Templates, TypeIIIOnlyAtCodonPositionTwo) {
  for (AminoAcid aa : bio::kAllAminoAcids) {
    const CodonTemplate& t = codon_template(aa);
    EXPECT_NE(t[0].type, ElementType::DependentIII)
        << bio::to_three_letter(aa);
    EXPECT_NE(t[1].type, ElementType::DependentIII)
        << bio::to_three_letter(aa);
  }
}

TEST(Templates, ElementTypeCensus) {
  // The codon table yields a fixed census over the 21 templates:
  // unique codons (Met, Trp) are all Type I; four-codon boxes end in D...
  std::size_t type1 = 0, type2 = 0, type3 = 0;
  for (AminoAcid aa : bio::kAllAminoAcids) {
    for (std::size_t i = 0; i < 3; ++i) {
      switch (codon_template(aa)[i].type) {
        case ElementType::ExactI: ++type1; break;
        case ElementType::ConditionalII: ++type2; break;
        case ElementType::DependentIII: ++type3; break;
      }
    }
  }
  EXPECT_EQ(type1 + type2 + type3, 63u);
  // First elements: 19 exact + 2 conditional (Leu U/C, Arg A/C).
  // Second elements: 20 exact + 1 conditional (Stop A/G).
  // Third elements: 2 exact (Met, Trp), 10 conditional (six U/C boxes,
  // three A/G boxes, Ile G-bar), 9 dependent (six D four-codon boxes
  // incl. Ser, plus Leu3/Arg3/Stop3).
  EXPECT_EQ(type1, 19u + 20u + 2u);
  EXPECT_EQ(type2, 2u + 1u + 10u);
  EXPECT_EQ(type3, 9u);
}

TEST(BackElement, ExactMatchSemantics) {
  const BackElement e = BackElement::make_exact(Nucleotide::G);
  for (Nucleotide r : bio::kAllNucleotides)
    EXPECT_EQ(e.matches(r, Nucleotide::A, Nucleotide::A),
              r == Nucleotide::G);
}

TEST(BackElement, ConditionalSemantics) {
  const auto matches_set = [](Condition c,
                              std::initializer_list<Nucleotide> set) {
    const BackElement e = BackElement::make_conditional(c);
    for (Nucleotide r : bio::kAllNucleotides) {
      const bool expected =
          std::find(set.begin(), set.end(), r) != set.end();
      EXPECT_EQ(e.matches(r, Nucleotide::A, Nucleotide::A), expected)
          << static_cast<int>(c) << " " << bio::to_char_rna(r);
    }
  };
  matches_set(Condition::UorC, {Nucleotide::U, Nucleotide::C});
  matches_set(Condition::AorG, {Nucleotide::A, Nucleotide::G});
  matches_set(Condition::NotG, {Nucleotide::A, Nucleotide::C, Nucleotide::U});
  matches_set(Condition::AorC, {Nucleotide::A, Nucleotide::C});
}

TEST(BackElement, DependentStopSemantics) {
  const BackElement e = BackElement::make_dependent(Function::Stop3);
  // Previous (i-1) = A: third of stop may be A or G (UAA, UAG).
  EXPECT_TRUE(e.matches(Nucleotide::A, Nucleotide::A, Nucleotide::U));
  EXPECT_TRUE(e.matches(Nucleotide::G, Nucleotide::A, Nucleotide::U));
  EXPECT_FALSE(e.matches(Nucleotide::C, Nucleotide::A, Nucleotide::U));
  EXPECT_FALSE(e.matches(Nucleotide::U, Nucleotide::A, Nucleotide::U));
  // Previous = G: only A (UGA).
  EXPECT_TRUE(e.matches(Nucleotide::A, Nucleotide::G, Nucleotide::U));
  EXPECT_FALSE(e.matches(Nucleotide::G, Nucleotide::G, Nucleotide::U));
}

TEST(BackElement, DependentLeuSemantics) {
  const BackElement e = BackElement::make_dependent(Function::Leu3);
  // First element (i-2) = C: CUN — anything.
  for (Nucleotide r : bio::kAllNucleotides)
    EXPECT_TRUE(e.matches(r, Nucleotide::U, Nucleotide::C));
  // First element = U: UUR — A or G only.
  EXPECT_TRUE(e.matches(Nucleotide::A, Nucleotide::U, Nucleotide::U));
  EXPECT_TRUE(e.matches(Nucleotide::G, Nucleotide::U, Nucleotide::U));
  EXPECT_FALSE(e.matches(Nucleotide::C, Nucleotide::U, Nucleotide::U));
  EXPECT_FALSE(e.matches(Nucleotide::U, Nucleotide::U, Nucleotide::U));
}

TEST(BackElement, DependentArgSemantics) {
  const BackElement e = BackElement::make_dependent(Function::Arg3);
  // First element (i-2) = C: CGN — anything.
  for (Nucleotide r : bio::kAllNucleotides)
    EXPECT_TRUE(e.matches(r, Nucleotide::G, Nucleotide::C));
  // First element = A: AGR — A or G only.
  EXPECT_TRUE(e.matches(Nucleotide::A, Nucleotide::G, Nucleotide::A));
  EXPECT_TRUE(e.matches(Nucleotide::G, Nucleotide::G, Nucleotide::A));
  EXPECT_FALSE(e.matches(Nucleotide::C, Nucleotide::G, Nucleotide::A));
  EXPECT_FALSE(e.matches(Nucleotide::U, Nucleotide::G, Nucleotide::A));
}

TEST(BackElement, DependentDMatchesEverything) {
  const BackElement e = BackElement::make_dependent(Function::AnyD);
  for (Nucleotide r : bio::kAllNucleotides)
    for (Nucleotide p1 : bio::kAllNucleotides)
      for (Nucleotide p2 : bio::kAllNucleotides)
        EXPECT_TRUE(e.matches(r, p1, p2));
}

TEST(BackTranslate, TripleLength) {
  const auto protein = bio::ProteinSequence::parse("MFSR");
  EXPECT_EQ(back_translate(protein).size(), 12u);
}

TEST(BackTranslate, PaperQueryExample) {
  // §III-B: Met-Phe-Ser-Arg-Stop back-translates to
  // AUG - UU(U/C) - UCD - (A/C)G(F:10) - U(A/G)(F:00).
  bio::ProteinSequence q = bio::ProteinSequence::parse("MFS");
  q.push_back(bio::AminoAcid::Arg);
  q.push_back(bio::AminoAcid::Stop);
  const auto elements = back_translate(q);
  ASSERT_EQ(elements.size(), 15u);
  EXPECT_EQ(to_string(elements[0]), "A");
  EXPECT_EQ(to_string(elements[1]), "U");
  EXPECT_EQ(to_string(elements[2]), "G");
  EXPECT_EQ(to_string(elements[3]), "U");
  EXPECT_EQ(to_string(elements[4]), "U");
  EXPECT_EQ(to_string(elements[5]), "U/C");
  EXPECT_EQ(to_string(elements[6]), "U");
  EXPECT_EQ(to_string(elements[7]), "C");
  EXPECT_EQ(to_string(elements[8]), "D");
  EXPECT_EQ(to_string(elements[9]), "A/C");
  EXPECT_EQ(to_string(elements[10]), "G");
  EXPECT_EQ(to_string(elements[11]), "F:10");
  EXPECT_EQ(to_string(elements[12]), "U");
  EXPECT_EQ(to_string(elements[13]), "A/G");
  EXPECT_EQ(to_string(elements[14]), "F:00");
}

TEST(BackTranslate, EveryCodonOfEveryResidueMatchesItsTemplate) {
  // Generate a random coding sequence for each amino acid and verify the
  // back-translated elements match it position-wise (excluding AGY-Ser).
  for (AminoAcid aa : bio::kAllAminoAcids) {
    for (const Codon& c : bio::codons_for(aa)) {
      if (aa == AminoAcid::Ser && is_dropped_ser_codon(c)) continue;
      const CodonTemplate& t = codon_template(aa);
      EXPECT_TRUE(t[0].matches(c.first, Nucleotide::A, Nucleotide::A));
      EXPECT_TRUE(t[1].matches(c.second, c.first, Nucleotide::A));
      EXPECT_TRUE(t[2].matches(c.third, c.second, c.first))
          << bio::to_three_letter(aa) << " " << c.to_string();
    }
  }
}

TEST(ToString, RendersAllForms) {
  EXPECT_EQ(to_string(BackElement::make_exact(Nucleotide::C)), "C");
  EXPECT_EQ(to_string(BackElement::make_conditional(Condition::NotG)),
            "G-bar");
  EXPECT_EQ(to_string(BackElement::make_dependent(Function::Stop3)), "F:00");
  EXPECT_EQ(to_string(BackElement::make_dependent(Function::AnyD)), "D");
}

}  // namespace
}  // namespace fabp::core
