#include "fabp/core/hitmerge.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/core/backtranslate.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/core/bitscan_tiled.hpp"
#include "fabp/core/golden.hpp"

namespace fabp::core {
namespace {

// The deterministic-merge contract every parallel scan relies on: chunk
// slots are concatenated in chunk index order, nothing is re-sorted or
// deduplicated.  Because each chunk covers a disjoint ascending position
// range, concatenation in chunk order IS position order — but only as
// long as the helper never reorders.  This test pins that by feeding
// chunks whose concatenation is NOT globally sorted: a sorting (or
// stable-sorting) implementation would produce a different sequence and
// fail.
TEST(HitMerge, ConcatenatesInChunkOrderWithoutSorting) {
  const std::vector<std::vector<Hit>> chunks{
      {{100, 7}, {101, 9}},
      {},                       // empty chunks contribute nothing
      {{50, 3}},                // out of global position order on purpose
      {{60, 1}, {200, 2}},
  };
  const std::vector<Hit> merged = merge_hit_chunks(chunks);
  const std::vector<Hit> expected{
      {100, 7}, {101, 9}, {50, 3}, {60, 1}, {200, 2}};
  EXPECT_EQ(merged, expected);

  // The appending form matches and preserves what was already in `out`.
  std::vector<Hit> out{{1, 1}};
  merge_hit_chunks_into(chunks, out);
  std::vector<Hit> expected_with_prefix{{1, 1}};
  expected_with_prefix.insert(expected_with_prefix.end(), expected.begin(),
                              expected.end());
  EXPECT_EQ(out, expected_with_prefix);
}

TEST(HitMerge, BatchTransposesChunkMajorToQueryMajor) {
  // chunks[c][q] -> out[q] = concat over c.
  const std::vector<std::vector<std::vector<Hit>>> chunks{
      {{{10, 1}}, {{20, 2}, {21, 3}}},
      {{{90, 4}}, {}},
  };
  const auto merged = merge_hit_chunks_batch(chunks, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (std::vector<Hit>{{10, 1}, {90, 4}}));
  EXPECT_EQ(merged[1], (std::vector<Hit>{{20, 2}, {21, 3}}));
}

TEST(HitMerge, EmptyInputs) {
  EXPECT_TRUE(merge_hit_chunks({}).empty());
  const auto batch = merge_hit_chunks_batch({}, 3);
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& q : batch) EXPECT_TRUE(q.empty());
}

// Regression for the three refactored merge sites: the parallel scans
// (golden, bitscan planes, tiled) must still produce exactly the serial
// scan's output — contents AND order — now that they share the helper.
TEST(HitMerge, ParallelScansStillMatchSerialOrder) {
  util::Xoshiro256 rng{814};
  const bio::NucleotideSequence ref = bio::random_dna(40000, rng);
  const bio::ProteinSequence protein = bio::random_protein(9, rng);
  const std::vector<BackElement> query = back_translate(protein);
  const std::uint32_t threshold =
      static_cast<std::uint32_t>(query.size() / 2);
  util::ThreadPool pool{4};

  const std::vector<Hit> serial = golden_hits(query, ref, threshold);
  EXPECT_EQ(golden_hits_parallel(query, ref, threshold, pool), serial);

  const bio::PackedNucleotides packed{ref};
  const BitScanQuery compiled{query};
  const BitScanReference planes{packed};
  EXPECT_EQ(bitscan_hits_parallel(compiled, planes, threshold, pool), serial);
  EXPECT_EQ(TileScanner{packed}.hits(compiled, threshold, &pool), serial);
}

}  // namespace
}  // namespace fabp::core
