#include "fabp/core/accelerator.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::PackedNucleotides;
using bio::ProteinSequence;

AcceleratorConfig config_with_threshold(std::uint32_t t) {
  AcceleratorConfig cfg;
  cfg.threshold = t;
  return cfg;
}

TEST(Accelerator, RequiresLoadedQuery) {
  Accelerator acc;
  EXPECT_THROW(acc.run(PackedNucleotides{}), std::logic_error);
  EXPECT_THROW(acc.estimate(1000), std::logic_error);
  EXPECT_THROW(acc.load_query(ProteinSequence{}), std::invalid_argument);
}

TEST(Accelerator, HitsMatchGoldenModelRandomized) {
  // The central property: the cycle-level simulator produces exactly the
  // golden model's hits, across query lengths spanning beat boundaries
  // and references of several beats.
  util::Xoshiro256 rng{111};
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t residues = 4 + rng.bounded(40);  // 12..132 elements
    const ProteinSequence protein = bio::random_protein(residues, rng);
    NucleotideSequence ref = bio::random_dna(300 + rng.bounded(1500), rng);
    // Plant the query so high-threshold hits exist.
    const NucleotideSequence coding =
        bio::random_coding_sequence(protein, rng);
    const std::size_t pos = rng.bounded(ref.size() - coding.size());
    for (std::size_t i = 0; i < coding.size(); ++i) ref[pos + i] = coding[i];

    const auto threshold = static_cast<std::uint32_t>(
        (residues * 3 * (60 + rng.bounded(41))) / 100);  // 60-100%

    Accelerator acc{config_with_threshold(threshold)};
    acc.load_query(protein);
    const AcceleratorRun run = acc.run(PackedNucleotides{ref});

    const auto expected =
        golden_hits(back_translate(protein), ref, threshold);
    EXPECT_EQ(run.hits, expected) << "trial " << trial << " residues "
                                  << residues << " t " << threshold;
  }
}

TEST(Accelerator, LutPathIdenticalToBehavioralPath) {
  util::Xoshiro256 rng{113};
  const ProteinSequence protein = bio::random_protein(20, rng);
  NucleotideSequence ref = bio::random_dna(2000, rng);

  AcceleratorConfig fast = config_with_threshold(40);
  AcceleratorConfig lut = fast;
  lut.use_lut_path = true;

  Accelerator a{fast}, b{lut};
  a.load_query(protein);
  b.load_query(protein);
  const PackedNucleotides packed{ref};
  EXPECT_EQ(a.run(packed).hits, b.run(packed).hits);
}

TEST(Accelerator, QueryLongerThanBeat) {
  // 100 residues = 300 elements > 256: positions span three beats.
  util::Xoshiro256 rng{117};
  const ProteinSequence protein = bio::random_protein(100, rng);
  NucleotideSequence ref = bio::random_dna(3000, rng);
  const NucleotideSequence coding = random_template_coding(protein, rng);
  for (std::size_t i = 0; i < coding.size(); ++i) ref[411 + i] = coding[i];

  const auto threshold = static_cast<std::uint32_t>(coding.size());
  Accelerator acc{config_with_threshold(threshold)};
  acc.load_query(protein);
  const AcceleratorRun run = acc.run(PackedNucleotides{ref});
  ASSERT_EQ(run.hits.size(),
            golden_hits(back_translate(protein), ref, threshold).size());
  bool found = false;
  for (const Hit& h : run.hits)
    if (h.position == 411) found = true;
  EXPECT_TRUE(found);
}

TEST(Accelerator, ReferenceShorterThanQueryYieldsNoHits) {
  util::Xoshiro256 rng{119};
  const ProteinSequence protein = bio::random_protein(30, rng);
  Accelerator acc{config_with_threshold(0)};
  acc.load_query(protein);
  const AcceleratorRun run = acc.run(PackedNucleotides{
      bio::random_dna(50, rng)});
  EXPECT_TRUE(run.hits.empty());
}

TEST(Accelerator, CycleAccountingIsConsistent) {
  util::Xoshiro256 rng{127};
  const ProteinSequence protein = bio::random_protein(10, rng);
  Accelerator acc{config_with_threshold(31)};
  acc.load_query(protein);
  const AcceleratorRun run =
      acc.run(PackedNucleotides{bio::random_dna(10'000, rng)});

  EXPECT_EQ(run.beats, (10'000 + 255) / 256);
  EXPECT_EQ(run.cycles, run.beats + run.stall_cycles + run.compute_cycles +
                            run.wb_cycles + acc.config().pipeline_depth);
  EXPECT_GT(run.kernel_seconds, 0.0);
  EXPECT_GT(run.watts, 0.0);
  EXPECT_NEAR(run.joules, run.watts * run.kernel_seconds, 1e-12);
}

TEST(Accelerator, StallsMatchAxiEfficiency) {
  util::Xoshiro256 rng{131};
  const ProteinSequence protein = bio::random_protein(10, rng);
  Accelerator acc{config_with_threshold(30)};
  acc.load_query(protein);
  const AcceleratorRun run =
      acc.run(PackedNucleotides{bio::random_dna(100'000, rng)});
  const double measured_eff =
      static_cast<double>(run.beats) /
      static_cast<double>(run.beats + run.stall_cycles);
  EXPECT_NEAR(measured_eff, acc.mapping().axi_efficiency, 0.01);
}

TEST(Accelerator, SegmentedQueryAddsComputeCycles) {
  util::Xoshiro256 rng{137};
  const ProteinSequence protein = bio::random_protein(250, rng);
  Accelerator acc{config_with_threshold(750)};
  const FabpMapping& m = acc.load_query(protein);
  ASSERT_GT(m.segments, 1u);
  const AcceleratorRun run =
      acc.run(PackedNucleotides{bio::random_dna(20'000, rng)});
  EXPECT_EQ(run.compute_cycles, run.beats * (m.segments - 1));
}

TEST(Accelerator, EstimateMatchesRunTimingClosely) {
  util::Xoshiro256 rng{139};
  const ProteinSequence protein = bio::random_protein(50, rng);
  Accelerator acc{config_with_threshold(150)};
  acc.load_query(protein);

  const std::size_t elements = 200'000;
  const AcceleratorRun run =
      acc.run(PackedNucleotides{bio::random_dna(elements, rng)});
  const AcceleratorRun est = acc.estimate(elements);
  EXPECT_NEAR(static_cast<double>(est.cycles),
              static_cast<double>(run.cycles),
              static_cast<double>(run.cycles) * 0.02);
}

TEST(Accelerator, EstimateBandwidthMatchesMapping) {
  util::Xoshiro256 rng{149};
  for (std::size_t residues : {50u, 250u}) {
    const ProteinSequence protein = bio::random_protein(residues, rng);
    Accelerator acc{config_with_threshold(0)};
    acc.load_query(protein);
    const AcceleratorRun est = acc.estimate(100'000'000);
    EXPECT_NEAR(est.effective_bandwidth_bps,
                acc.mapping().effective_bandwidth_bps,
                acc.mapping().effective_bandwidth_bps * 0.02)
        << residues;
  }
}

TEST(Accelerator, ThresholdZeroEmitsEveryPosition) {
  util::Xoshiro256 rng{151};
  const ProteinSequence protein = bio::random_protein(5, rng);
  Accelerator acc{config_with_threshold(0)};
  acc.load_query(protein);
  const NucleotideSequence ref = bio::random_dna(700, rng);
  const AcceleratorRun run = acc.run(PackedNucleotides{ref});
  EXPECT_EQ(run.hits.size(), ref.size() - 15 + 1);
}

TEST(Accelerator, RunIsDeterministic) {
  util::Xoshiro256 rng{159};
  const ProteinSequence protein = bio::random_protein(15, rng);
  Accelerator acc{config_with_threshold(30)};
  acc.load_query(protein);
  const PackedNucleotides packed{bio::random_dna(5000, rng)};
  const AcceleratorRun a = acc.run(packed);
  const AcceleratorRun b = acc.run(packed);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stall_cycles, b.stall_cycles);
}

TEST(Accelerator, ReloadingQueryReplacesState) {
  util::Xoshiro256 rng{160};
  Accelerator acc{config_with_threshold(0)};
  acc.load_query(bio::random_protein(10, rng));
  EXPECT_EQ(acc.encoded_query().size(), 30u);
  acc.load_query(bio::random_protein(20, rng));
  EXPECT_EQ(acc.encoded_query().size(), 60u);
  EXPECT_EQ(acc.mapping().query_elements, 60u);
}

TEST(Accelerator, MappingExposedAfterLoad) {
  util::Xoshiro256 rng{157};
  Accelerator acc;
  const ProteinSequence protein = bio::random_protein(50, rng);
  const FabpMapping& m = acc.load_query(protein);
  EXPECT_EQ(m.query_elements, 150u);
  EXPECT_EQ(acc.encoded_query().size(), 150u);
}

}  // namespace
}  // namespace fabp::core
