// Device batch scheduler differential + chaos suite (DESIGN.md §4d).
//
// The scheduler's contract is that packing coalesced requests into device
// invocations, staging them through the ping/pong DMA buffers and slicing
// the reference across PE arrays is *pure accounting*: every hit list is
// bit-identical to the serial hw-sim path (and so to the golden model),
// and the fault schedule a fixed seed draws is invariant under the batch
// capacity and buffer depth.  Lives in the engine_tests binary so the
// check.sh tsan leg covers the concurrent ping/pong staging handoff.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fabp/bio/generate.hpp"
#include "fabp/core/backend.hpp"
#include "fabp/core/engine.hpp"
#include "fabp/core/golden.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;

struct Fixture {
  NucleotideSequence reference;
  ReferenceStore store;
  std::vector<CompiledQueryPtr> queries;
  std::vector<BackendRequest> requests;

  Fixture(std::uint64_t seed, std::size_t reference_bases,
          std::size_t query_count, bool both_strands) {
    util::Xoshiro256 rng{seed};
    reference = bio::random_dna(reference_bases, rng);
    store.upload(bio::PackedNucleotides{reference}, both_strands);
    for (std::size_t q = 0; q < query_count; ++q) {
      queries.push_back(compile_query(bio::random_protein(6 + q % 7, rng)));
      BackendRequest request;
      request.query = queries.back().get();
      request.threshold =
          static_cast<std::uint32_t>(queries.back()->size() / 2);
      requests.push_back(request);
    }
  }
};

std::vector<Hit> golden_forward(const Fixture& f, std::size_t q) {
  return golden_hits(f.queries[q]->elements, f.reference,
                     f.requests[q].threshold);
}

std::vector<Hit> golden_reverse_mapped(const Fixture& f, std::size_t q) {
  const NucleotideSequence rc = f.reference.reverse_complement();
  std::vector<Hit> mapped;
  for (const Hit& hit :
       golden_hits(f.queries[q]->elements, rc, f.requests[q].threshold))
    mapped.push_back(Hit{
        f.reference.size() - hit.position - f.queries[q]->size(), hit.score});
  std::sort(mapped.begin(), mapped.end());
  return mapped;
}

// The core differential: packed/double-buffered/multi-PE run_many returns
// hit lists bit-identical to the serial hw-sim run() and the golden oracle
// — for every PE count and buffer depth, with ragged tails (11 requests
// against capacity 4) and both strands on.
TEST(DeviceScheduler, RunManyMatchesSerialAndGoldenAcrossPeAndDepth) {
  const Fixture f{931, 24000, 11, true};
  HostConfig config;
  config.search_both_strands = true;

  // Serial truth through the same backend kind (clean path, so the hits
  // are independent of the device-batch shape).
  const std::unique_ptr<ScanBackend> serial =
      make_backend(BackendKind::HwSim, config, f.store);
  std::vector<std::vector<Hit>> expected_fwd, expected_rev;
  for (std::size_t q = 0; q < f.requests.size(); ++q) {
    Expected<BackendRun> run = serial->run(f.requests[q]);
    ASSERT_TRUE(run.has_value());
    EXPECT_EQ(run->hits, golden_forward(f, q)) << "query " << q;
    EXPECT_EQ(run->reverse_hits, golden_reverse_mapped(f, q)) << "query " << q;
    expected_fwd.push_back(std::move(run->hits));
    expected_rev.push_back(std::move(run->reverse_hits));
  }

  for (const std::size_t pe : {1u, 2u, 4u}) {
    for (const std::size_t depth : {1u, 2u}) {
      HostConfig batched = config;
      batched.device_batch.invocation_tasks = 4;
      batched.device_batch.pe_count = pe;
      batched.device_batch.buffer_depth = depth;
      const std::unique_ptr<ScanBackend> backend =
          make_backend(BackendKind::HwSim, batched, f.store);
      const auto results = backend->run_many(f.requests);
      ASSERT_EQ(results.size(), f.requests.size());
      for (std::size_t q = 0; q < results.size(); ++q) {
        ASSERT_TRUE(results[q].has_value())
            << "pe " << pe << " depth " << depth << " query " << q;
        EXPECT_EQ(results[q]->hits, expected_fwd[q])
            << "pe " << pe << " depth " << depth << " query " << q;
        EXPECT_EQ(results[q]->reverse_hits, expected_rev[q])
            << "pe " << pe << " depth " << depth << " query " << q;
      }
      const DevicePipelineStats stats = backend->pipeline_stats();
      EXPECT_EQ(stats.tasks, f.requests.size());
      EXPECT_EQ(stats.invocations, 3u);  // 4 + 4 + 3: the ragged tail
      EXPECT_EQ(stats.largest_invocation, 4u);
      EXPECT_EQ(stats.pe_count, pe);
      EXPECT_EQ(stats.buffer_depth, depth);
      EXPECT_GT(stats.pipelined_s, 0.0);
      EXPECT_GE(stats.serial_s, stats.pipelined_s);
    }
  }
}

// Precomputed strand hit lists (the engine's coalescing precompute) must
// flow through the per-PE descheduler unchanged.
TEST(DeviceScheduler, PrecomputedHitListsMatchInRunScans) {
  const Fixture f{932, 16000, 6, true};
  HostConfig config;
  config.search_both_strands = true;
  config.device_batch.invocation_tasks = 4;
  config.device_batch.pe_count = 2;

  const std::unique_ptr<ScanBackend> scanning =
      make_backend(BackendKind::HwSim, config, f.store);
  const auto plain = scanning->run_many(f.requests);

  // Raw strand lists exactly as the engine precomputes them.
  std::vector<CompiledQueryPtr> queries = f.queries;
  std::vector<std::uint32_t> thresholds;
  for (const BackendRequest& request : f.requests)
    thresholds.push_back(request.threshold);
  const std::unique_ptr<ScanBackend> pre =
      make_backend(BackendKind::HwSim, config, f.store);
  const auto fwd_lists = pre->scan_batch(queries, thresholds, false, nullptr);
  const auto rev_lists = pre->scan_batch(queries, thresholds, true, nullptr);

  std::vector<BackendRequest> primed = f.requests;
  for (std::size_t q = 0; q < primed.size(); ++q) {
    primed[q].forward_hits = &fwd_lists[q];
    primed[q].reverse_hits = &rev_lists[q];
  }
  const auto cached = pre->run_many(primed);
  ASSERT_EQ(cached.size(), plain.size());
  for (std::size_t q = 0; q < cached.size(); ++q) {
    ASSERT_TRUE(plain[q].has_value());
    ASSERT_TRUE(cached[q].has_value());
    EXPECT_EQ(cached[q]->hits, plain[q]->hits) << "query " << q;
    EXPECT_EQ(cached[q]->reverse_hits, plain[q]->reverse_hits)
        << "query " << q;
  }
}

TEST(DeviceScheduler, EmptyBatchReturnsEmpty) {
  const Fixture f{933, 4000, 1, false};
  const HostConfig config;
  const std::unique_ptr<ScanBackend> backend =
      make_backend(BackendKind::HwSim, config, f.store);
  EXPECT_TRUE(backend->run_many({}).empty());
  EXPECT_EQ(backend->pipeline_stats().invocations, 0u);
}

// ---------------------------------------------------------------------------
// Fault-schedule invariance (the replay contract): the stream keying is a
// pure function of the invocation counter, so a fixed seed draws the same
// corrupted beats whether the pipeline runs one buffer deep or eight.

TEST(DeviceScheduler, FaultScheduleIdenticalAtBufferDepth1And8) {
  HostConfig config;
  config.search_both_strands = true;
  config.fault.seed = 0xfab5eed1;
  config.fault.flip_rate = 2e-4;       // ~10% of beats take a bit flip
  config.fault.drop_rate = 0.01;
  config.fault.dup_rate = 0.01;
  config.fault.stall_rate = 0.02;
  config.fault.readback_flip_rate = 0.3;
  // Deliver the corruption as-is: hits must then be *identically corrupt*
  // at both depths, which pins far more than the repaired case would.
  config.recovery.verify_integrity = false;
  config.device_batch.invocation_tasks = 8;

  const Fixture f{934, 20000, 19, true};
  std::vector<std::vector<Hit>> hits_at_depth1;
  std::vector<hw::FaultEvent> log_at_depth1;
  for (const std::size_t depth : {1u, 8u}) {
    HostConfig run_config = config;
    run_config.device_batch.buffer_depth = depth;
    const std::unique_ptr<ScanBackend> backend =
        make_backend(BackendKind::HwSim, run_config, f.store);
    const auto results = backend->run_many(f.requests);
    ASSERT_EQ(results.size(), f.requests.size());
    std::vector<std::vector<Hit>> hits;
    for (std::size_t q = 0; q < results.size(); ++q) {
      ASSERT_TRUE(results[q].has_value()) << "depth " << depth;
      hits.push_back(results[q]->hits);
      hits.push_back(results[q]->reverse_hits);
    }
    ASSERT_FALSE(backend->fault_log().empty());
    if (depth == 1) {
      hits_at_depth1 = std::move(hits);
      log_at_depth1 = backend->fault_log();
    } else {
      EXPECT_EQ(backend->fault_log(), log_at_depth1);
      EXPECT_EQ(hits, hits_at_depth1);
    }
  }
}

// With integrity checking and spot checks on, every injected corruption is
// detected and repaired: the batched chaos run still delivers golden hits.
TEST(DeviceScheduler, RecoveryRepairsBatchedRunsToGolden) {
  HostConfig config;
  config.search_both_strands = true;
  config.fault.seed = 0xfab5eed2;
  config.fault.flip_rate = 2e-4;
  config.fault.drop_rate = 0.005;
  config.fault.dup_rate = 0.005;
  config.fault.readback_flip_rate = 0.5;
  config.recovery.spot_check_samples = 2;
  config.device_batch.invocation_tasks = 4;
  config.device_batch.pe_count = 2;
  config.device_batch.buffer_depth = 2;

  const Fixture f{935, 20000, 10, true};
  const std::unique_ptr<ScanBackend> backend =
      make_backend(BackendKind::HwSim, config, f.store);
  const auto results = backend->run_many(f.requests);
  ASSERT_EQ(results.size(), f.requests.size());
  RecoveryStats merged;
  for (std::size_t q = 0; q < results.size(); ++q) {
    ASSERT_TRUE(results[q].has_value()) << "query " << q;
    EXPECT_EQ(results[q]->hits, golden_forward(f, q)) << "query " << q;
    EXPECT_EQ(results[q]->reverse_hits, golden_reverse_mapped(f, q))
        << "query " << q;
    merged.merge(results[q]->recovery);
  }
  EXPECT_FALSE(backend->fault_log().empty());
  EXPECT_GT(merged.crc_faults + merged.readback_faults, 0u);
  EXPECT_GT(merged.recovery_s, 0.0);
}

// Transient transfer failures retry the *invocation* (never the rest of
// the batch) and surface in the pipeline accounting.
TEST(DeviceScheduler, TransferFaultsRetryInvocationsAndStayGolden) {
  HostConfig config;
  config.fault.seed = 0xfab5eed3;
  config.fault.transfer_fail_rate = 0.6;
  config.recovery.max_attempts = 8;
  config.device_batch.invocation_tasks = 2;

  const Fixture f{936, 12000, 8, false};
  const std::unique_ptr<ScanBackend> backend =
      make_backend(BackendKind::HwSim, config, f.store);
  const auto results = backend->run_many(f.requests);
  ASSERT_EQ(results.size(), f.requests.size());
  for (std::size_t q = 0; q < results.size(); ++q) {
    ASSERT_TRUE(results[q].has_value()) << "query " << q;
    EXPECT_EQ(results[q]->hits, golden_forward(f, q)) << "query " << q;
  }
  const DevicePipelineStats stats = backend->pipeline_stats();
  EXPECT_EQ(stats.invocations, 4u);
  EXPECT_GT(stats.retried_invocations, 0u);
  EXPECT_LE(stats.retried_invocations, stats.invocations);
}

// A watchdog that every attempt trips exhausts the retry budget; the
// fallback serves the prepared clean hits with zero card time.
TEST(DeviceScheduler, WatchdogExhaustionFallsBackToGoldenHits) {
  HostConfig config;
  config.fault.seed = 0xfab5eed4;
  config.fault.stall_rate = 1e-12;  // arms the chaos path, injects nothing
  config.recovery.watchdog_s = 1e-15;
  config.recovery.max_attempts = 2;
  config.device_batch.invocation_tasks = 4;

  const Fixture f{937, 10000, 4, false};
  const std::unique_ptr<ScanBackend> backend =
      make_backend(BackendKind::HwSim, config, f.store);
  const auto results = backend->run_many(f.requests);
  ASSERT_EQ(results.size(), f.requests.size());
  for (std::size_t q = 0; q < results.size(); ++q) {
    ASSERT_TRUE(results[q].has_value()) << "query " << q;
    EXPECT_EQ(results[q]->hits, golden_forward(f, q)) << "query " << q;
  }
  // Invocation-level recovery accounting rides on the first packed task.
  EXPECT_EQ(results[0]->recovery.timeouts, 2u);
  EXPECT_EQ(results[0]->recovery.fallbacks, 1u);
  EXPECT_EQ(results[0]->recovery.attempts, 2u);
}

// With the software fallback off, exhausted invocations return typed
// errors for exactly their packed tasks, and once the health machine
// degrades later invocations fail fast with DeviceLost.
TEST(DeviceScheduler, DegradationWithoutFallbackYieldsTypedErrors) {
  HostConfig config;
  config.fault.seed = 0xfab5eed5;
  config.fault.transfer_fail_rate = 1.0;
  config.recovery.max_attempts = 2;
  config.recovery.degrade_after = 2;
  config.recovery.allow_software_fallback = false;
  config.device_batch.invocation_tasks = 2;

  const Fixture f{938, 8000, 8, false};  // 4 invocations of 2 tasks
  const std::unique_ptr<ScanBackend> backend =
      make_backend(BackendKind::HwSim, config, f.store);
  const auto results = backend->run_many(f.requests);
  ASSERT_EQ(results.size(), f.requests.size());
  for (const auto& result : results) ASSERT_FALSE(result.has_value());
  // First two invocations exhaust their transfer retries...
  for (std::size_t q = 0; q < 4; ++q)
    EXPECT_EQ(results[q].error().code, ErrorCode::TransferFailure)
        << "query " << q;
  // ... which degrades the card; the rest fail fast.
  for (std::size_t q = 4; q < 8; ++q)
    EXPECT_EQ(results[q].error().code, ErrorCode::DeviceLost) << "query " << q;
  EXPECT_EQ(backend->health(), HealthState::Degraded);
}

// ---------------------------------------------------------------------------
// Engine integration: the coalescing window must fit the device pipeline,
// and the scheduler's accounting is visible through Engine::pipeline_stats.

TEST(DeviceScheduler, EngineRejectsCoalesceBeyondDeviceWindow) {
  EngineConfig config;
  config.backend = BackendKind::HwSim;
  config.max_coalesce = 64;
  config.host.device_batch.invocation_tasks = 4;
  config.host.device_batch.buffer_depth = 2;  // window = 8 < 64
  EXPECT_EQ(validate_engine_config(config).code, ErrorCode::InvalidConfig);
  try {
    Engine engine{config};
    FAIL() << "coalesce window wider than the device pipeline must throw";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), ErrorCode::InvalidConfig);
  }

  // The cap is a device constraint: software backends are unaffected.
  config.backend = BackendKind::Tiled;
  EXPECT_EQ(validate_engine_config(config).code, ErrorCode::None);
  // And a window that fits passes for the hw-sim too.
  config.backend = BackendKind::HwSim;
  config.max_coalesce = 8;
  EXPECT_EQ(validate_engine_config(config).code, ErrorCode::None);
}

TEST(DeviceScheduler, EngineExposesPipelineStats) {
  util::Xoshiro256 rng{939};
  const NucleotideSequence ref = bio::random_dna(15000, rng);
  std::vector<ProteinSequence> queries;
  for (std::size_t q = 0; q < 6; ++q)
    queries.push_back(bio::random_protein(6 + q, rng));

  EngineConfig config;
  config.backend = BackendKind::HwSim;
  config.workers = 1;
  config.autostart = false;  // let the burst queue up so batches form
  config.queue_capacity = 64;
  Engine engine{config};
  engine.upload_reference(NucleotideSequence{ref});

  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < 32; ++i) {
    const ProteinSequence& query = queries[i % queries.size()];
    tickets.push_back(
        engine.submit(query, static_cast<std::uint32_t>(query.size())));
  }
  engine.start();
  for (Ticket& ticket : tickets) ASSERT_TRUE(ticket.wait().has_value());

  const DevicePipelineStats stats = engine.pipeline_stats();
  EXPECT_GT(stats.invocations, 0u);
  EXPECT_EQ(stats.tasks, 32u);
  EXPECT_EQ(stats.retried_invocations, 0u);
  EXPECT_GT(stats.pipelined_s, 0.0);
  EXPECT_GE(stats.serial_s, stats.pipelined_s);
  EXPECT_GT(stats.occupancy(), 0.0);
  EXPECT_GT(stats.modeled_qps(), 0.0);

  // Software backends run no device pipeline: stats stay all-zero.
  EngineConfig software = config;
  software.backend = BackendKind::Planes;
  software.autostart = true;
  Engine software_engine{software};
  software_engine.upload_reference(NucleotideSequence{ref});
  ASSERT_TRUE(software_engine
                  .align_sync(queries[0],
                              static_cast<std::uint32_t>(queries[0].size()))
                  .has_value());
  EXPECT_EQ(software_engine.pipeline_stats().invocations, 0u);
  EXPECT_EQ(software_engine.pipeline_stats().pipelined_s, 0.0);
}

}  // namespace
}  // namespace fabp::core
