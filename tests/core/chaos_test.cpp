// Chaos differential suite: the headline invariant of the fault layer.
// Under any *recoverable* injected fault schedule the session's hits are
// bit-identical to a fault-free oracle run, with RecoveryStats accounting
// for every retry / re-scan / fallback; unrecoverable schedules produce
// typed errors — never crashes, never silently wrong hits.  Schedules are
// pure functions of (seed, invocation), so every assertion here replays.

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/core/host.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;

struct Workload {
  NucleotideSequence reference;
  ProteinSequence query;
  std::uint32_t threshold = 0;
};

Workload make_workload(std::size_t bases = 50'000, std::size_t aa = 20,
                       std::uint64_t seed = 9001) {
  util::Xoshiro256 rng{seed};
  Workload w;
  w.reference = bio::random_dna(bases, rng);
  w.query = bio::random_protein(aa, rng);
  // Low enough that hits are dense: corruption anywhere in the reference
  // perturbs the hit list, so silent-corruption bugs cannot hide.
  w.threshold = static_cast<std::uint32_t>(aa * 3 * 45 / 100);
  return w;
}

std::vector<Hit> oracle_hits(const Workload& w, const HostConfig& base) {
  HostConfig clean = base;
  clean.fault = hw::FaultConfig{};
  clean.recovery = RecoveryConfig{};
  Session session{clean};
  session.upload_reference(w.reference);
  return session.align(w.query, w.threshold).hits;
}

TEST(ChaosRecovery, ZeroFaultPathIsUntouched) {
  const Workload w = make_workload();
  Session session;
  session.upload_reference(w.reference);
  const HostRunReport report = session.align(w.query, w.threshold);
  EXPECT_EQ(report.recovery.attempts, 1u);
  EXPECT_EQ(report.recovery.retries, 0u);
  EXPECT_EQ(report.recovery.recovery_s, 0.0);
  EXPECT_FALSE(report.recovery.degraded);
  EXPECT_TRUE(session.fault_log().empty());
  EXPECT_EQ(session.health(), HealthState::Healthy);
}

TEST(ChaosRecovery, BitFlipSweepMatchesOracle) {
  const Workload w = make_workload();
  const std::vector<Hit> golden = oracle_hits(w, HostConfig{});
  std::size_t total_crc_faults = 0;
  for (const double rate : {1e-6, 1e-5, 1e-4}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      HostConfig config;
      config.fault.seed = seed;
      config.fault.flip_rate = rate;
      Session session{config};
      session.upload_reference(w.reference);
      const HostRunReport report = session.align(w.query, w.threshold);
      EXPECT_EQ(report.hits, golden)
          << "flip_rate=" << rate << " seed=" << seed;
      // Every detected tile was re-scanned and charged to recovery time.
      EXPECT_EQ(report.recovery.crc_faults, report.recovery.rescanned_tiles);
      if (report.recovery.rescanned_tiles > 0) {
        EXPECT_GT(report.recovery.recovery_s, 0.0);
      }
      total_crc_faults += report.recovery.crc_faults;
    }
  }
  // The sweep must actually have exercised detection (rates are chosen so
  // the high end corrupts with near-certainty).
  EXPECT_GT(total_crc_faults, 0u);
}

TEST(ChaosRecovery, DropDupStallSweepMatchesOracle) {
  const Workload w = make_workload();
  const std::vector<Hit> golden = oracle_hits(w, HostConfig{});
  std::size_t rescans = 0;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    HostConfig config;
    config.fault.seed = seed;
    config.fault.drop_rate = 5e-3;
    config.fault.dup_rate = 5e-3;
    config.fault.stall_rate = 1e-2;
    Session session{config};
    session.upload_reference(w.reference);
    const HostRunReport report = session.align(w.query, w.threshold);
    EXPECT_EQ(report.hits, golden) << "seed=" << seed;
    rescans += report.recovery.rescanned_tiles;
  }
  EXPECT_GT(rescans, 0u);
}

TEST(ChaosRecovery, DetectionOffDeliversCorruptHits) {
  // Integrity checking is what stands between an injected flip and a wrong
  // answer: with verify_integrity off (and no spot checks), some schedule
  // in this sweep must produce hits that differ from the oracle — proving
  // the injected corruption is real, not cosmetic.
  const Workload w = make_workload();
  const std::vector<Hit> golden = oracle_hits(w, HostConfig{});
  bool diverged = false;
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    HostConfig config;
    config.fault.seed = seed;
    config.fault.flip_rate = 1e-4;
    config.recovery.verify_integrity = false;
    Session session{config};
    session.upload_reference(w.reference);
    const HostRunReport report = session.align(w.query, w.threshold);
    EXPECT_EQ(report.recovery.crc_faults, 0u);  // detection disabled
    if (report.hits != golden) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(ChaosRecovery, TransientTransferFailuresRetryToGolden) {
  const Workload w = make_workload(20'000);
  const std::vector<Hit> golden = oracle_hits(w, HostConfig{});
  std::size_t faults = 0, retries = 0;
  for (const std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    HostConfig config;
    config.fault.seed = seed;
    config.fault.transfer_fail_rate = 0.4;
    Session session{config};
    session.upload_reference(w.reference);
    const HostRunReport report = session.align(w.query, w.threshold);
    EXPECT_EQ(report.hits, golden) << "seed=" << seed;
    // Accounting: every attempt beyond the first was a logged retry with
    // backoff charged to recovery time.
    EXPECT_EQ(report.recovery.attempts,
              report.recovery.retries + 1 + report.recovery.fallbacks);
    if (report.recovery.retries > 0) {
      EXPECT_GT(report.recovery.recovery_s, 0.0);
    }
    faults += report.recovery.transfer_faults;
    retries += report.recovery.retries;
  }
  EXPECT_GT(faults, 0u);
  EXPECT_GT(retries, 0u);
}

TEST(ChaosRecovery, UnrecoverableTransferYieldsTypedError) {
  const Workload w = make_workload(10'000);
  HostConfig config;
  config.fault.transfer_fail_rate = 1.0;  // every attempt fails
  config.recovery.allow_software_fallback = false;
  config.recovery.max_attempts = 3;
  Session session{config};
  session.upload_reference(w.reference);

  const auto result = session.try_align(w.query, w.threshold);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::TransferFailure);
  EXPECT_EQ(result.error().attempts, 3u);

  // The throwing wrapper carries the same typed payload.
  try {
    session.align(w.query, w.threshold);
    FAIL() << "align must throw on an unrecoverable schedule";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.code(), ErrorCode::TransferFailure);
  }
}

TEST(ChaosRecovery, WatchdogTimesOutStormedKernels) {
  const Workload w = make_workload(20'000);
  // Calibrate: a clean run's kernel time bounds the deadline from below.
  Session clean;
  clean.upload_reference(w.reference);
  const double clean_kernel =
      clean.align(w.query, w.threshold).kernel_s;

  HostConfig config;
  config.fault.stall_rate = 0.5;      // storm nearly every beat
  config.fault.stall_cycles = 1024;
  config.recovery.watchdog_s = clean_kernel * 1.5;
  config.recovery.allow_software_fallback = false;
  config.recovery.max_attempts = 2;
  Session session{config};
  session.upload_reference(w.reference);
  const auto result = session.try_align(w.query, w.threshold);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::Timeout);
}

TEST(ChaosRecovery, DegradesToSoftwareAndServesGolden) {
  const Workload w = make_workload(20'000);
  const std::vector<Hit> golden = oracle_hits(w, HostConfig{});
  HostConfig config;
  config.fault.transfer_fail_rate = 1.0;
  config.recovery.max_attempts = 2;
  config.recovery.degrade_after = 2;
  Session session{config};
  session.upload_reference(w.reference);

  // First two invocations exhaust their attempts and fall back; the
  // health machine then degrades the session.
  for (int i = 0; i < 2; ++i) {
    const HostRunReport report = session.align(w.query, w.threshold);
    EXPECT_EQ(report.hits, golden);
    EXPECT_EQ(report.recovery.fallbacks, 1u);
    EXPECT_EQ(report.recovery.attempts, 2u);
  }
  EXPECT_EQ(session.health(), HealthState::Degraded);

  // A degraded session skips the card entirely: zero attempts, zero card
  // time, still golden hits.
  const HostRunReport degraded = session.align(w.query, w.threshold);
  EXPECT_EQ(degraded.hits, golden);
  EXPECT_TRUE(degraded.recovery.degraded);
  EXPECT_EQ(degraded.recovery.attempts, 0u);
  EXPECT_EQ(degraded.recovery.fallbacks, 1u);
  EXPECT_EQ(degraded.kernel_s, 0.0);
}

TEST(ChaosRecovery, DegradedWithoutFallbackIsDeviceLost) {
  const Workload w = make_workload(10'000);
  HostConfig config;
  config.fault.transfer_fail_rate = 1.0;
  config.recovery.max_attempts = 1;
  config.recovery.degrade_after = 1;
  config.recovery.allow_software_fallback = false;
  Session session{config};
  session.upload_reference(w.reference);
  const auto first = session.try_align(w.query, w.threshold);
  ASSERT_FALSE(first.has_value());
  EXPECT_EQ(first.error().code, ErrorCode::TransferFailure);
  EXPECT_EQ(session.health(), HealthState::Degraded);
  const auto second = session.try_align(w.query, w.threshold);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, ErrorCode::DeviceLost);
}

TEST(ChaosRecovery, SpotCheckerCatchesCorruptionWithCrcOff) {
  // Small reference so the sampled windows cover a meaningful fraction:
  // with per-tile CRC disabled, only the golden spot-checker stands watch.
  const Workload w = make_workload(8'000);
  std::size_t checks = 0, caught = 0;
  for (const std::uint64_t seed : {41u, 42u, 43u, 44u, 45u}) {
    HostConfig config;
    config.fault.seed = seed;
    config.fault.flip_rate = 3e-4;
    config.recovery.verify_integrity = false;
    config.recovery.spot_check_samples = 48;
    Session session{config};
    session.upload_reference(w.reference);
    const HostRunReport report = session.align(w.query, w.threshold);
    checks += report.recovery.spot_checks;
    caught += report.recovery.spot_check_faults;
  }
  EXPECT_EQ(checks, 5u * 48u);
  EXPECT_GT(caught, 0u);
}

TEST(ChaosRecovery, ReadbackCorruptionIsReRead) {
  const Workload w = make_workload(20'000);
  const std::vector<Hit> golden = oracle_hits(w, HostConfig{});
  std::size_t rereads = 0;
  for (const std::uint64_t seed : {51u, 52u, 53u, 54u}) {
    HostConfig config;
    config.fault.seed = seed;
    config.fault.readback_flip_rate = 0.8;
    Session session{config};
    session.upload_reference(w.reference);
    const HostRunReport report = session.align(w.query, w.threshold);
    EXPECT_EQ(report.hits, golden) << "seed=" << seed;
    rereads += report.recovery.readback_faults;
  }
  EXPECT_GT(rereads, 0u);
}

TEST(ChaosRecovery, FaultScheduleReplays) {
  const Workload w = make_workload(20'000);
  HostConfig config;
  config.fault.seed = 77;
  config.fault.flip_rate = 5e-5;
  config.fault.drop_rate = 2e-3;
  config.fault.stall_rate = 5e-3;
  config.fault.transfer_fail_rate = 0.2;

  Session a{config}, b{config};
  a.upload_reference(w.reference);
  b.upload_reference(w.reference);
  for (int i = 0; i < 3; ++i) {
    const HostRunReport ra = a.align(w.query, w.threshold);
    const HostRunReport rb = b.align(w.query, w.threshold);
    EXPECT_EQ(ra.hits, rb.hits);
    EXPECT_EQ(ra.recovery.attempts, rb.recovery.attempts);
    EXPECT_EQ(ra.recovery.crc_faults, rb.recovery.crc_faults);
  }
  EXPECT_EQ(a.fault_log(), b.fault_log());
  EXPECT_FALSE(a.fault_log().empty());
}

TEST(ChaosRecovery, BothStrandsRecoverToGolden) {
  const Workload w = make_workload(30'000);
  HostConfig base;
  base.search_both_strands = true;
  Session clean{base};
  clean.upload_reference(w.reference);
  const HostRunReport golden = clean.align(w.query, w.threshold);

  HostConfig config = base;
  config.fault.seed = 99;
  config.fault.flip_rate = 1e-4;
  config.fault.drop_rate = 2e-3;
  Session session{config};
  session.upload_reference(w.reference);
  const HostRunReport report = session.align(w.query, w.threshold);
  EXPECT_EQ(report.hits, golden.hits);
  EXPECT_EQ(report.reverse_hits, golden.reverse_hits);
  EXPECT_GE(report.recovery.attempts, 2u);  // one per strand at least
}

TEST(ChaosBatch, BatchRecoversAndAggregatesStats) {
  util::Xoshiro256 rng{8100};
  const NucleotideSequence reference = bio::random_dna(40'000, rng);
  std::vector<ProteinSequence> queries;
  for (int i = 0; i < 3; ++i)
    queries.push_back(bio::random_protein(15 + i, rng));

  Session clean;
  clean.upload_reference(reference);
  const Session::BatchReport golden = clean.align_batch(queries, 0.45);

  HostConfig config;
  config.fault.seed = 123;
  config.fault.flip_rate = 5e-5;
  config.fault.transfer_fail_rate = 0.2;
  Session session{config};
  session.upload_reference(reference);
  const Session::BatchReport batch = session.align_batch(queries, 0.45);

  ASSERT_EQ(batch.per_query.size(), golden.per_query.size());
  RecoveryStats sum;
  for (std::size_t i = 0; i < batch.per_query.size(); ++i) {
    EXPECT_EQ(batch.per_query[i].hits, golden.per_query[i].hits) << i;
    sum.merge(batch.per_query[i].recovery);
  }
  EXPECT_EQ(batch.recovery.attempts, sum.attempts);
  EXPECT_EQ(batch.recovery.retries, sum.retries);
  EXPECT_EQ(batch.recovery.crc_faults, sum.crc_faults);
  EXPECT_EQ(batch.recovery.rescanned_tiles, sum.rescanned_tiles);
  EXPECT_GE(batch.recovery.attempts, queries.size());
}

TEST(ChaosBatch, UnrecoverableBatchReturnsTypedError) {
  util::Xoshiro256 rng{8200};
  const NucleotideSequence reference = bio::random_dna(10'000, rng);
  const std::vector<ProteinSequence> queries{bio::random_protein(12, rng),
                                             bio::random_protein(12, rng)};
  HostConfig config;
  config.fault.transfer_fail_rate = 1.0;
  config.recovery.allow_software_fallback = false;
  Session session{config};
  session.upload_reference(reference);
  const auto result = session.try_align_batch(queries, 0.5);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::TransferFailure);
}

}  // namespace
}  // namespace fabp::core
