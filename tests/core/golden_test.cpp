#include "fabp/core/golden.hpp"

#include <gtest/gtest.h>

#include "fabp/align/sliding.hpp"
#include "fabp/bio/generate.hpp"
#include "fabp/bio/translation.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;
using bio::SeqKind;

TEST(Golden, PerfectCodingSequenceScoresFull) {
  // A template-compatible coding sequence of the query protein must score
  // the full query length at the planted position (that is the whole
  // point of the degenerate matching).
  util::Xoshiro256 rng{71};
  for (int trial = 0; trial < 20; ++trial) {
    const ProteinSequence protein = bio::random_protein(25, rng);
    const NucleotideSequence coding = random_template_coding(protein, rng);
    const auto query = back_translate(protein);
    EXPECT_EQ(golden_score_at(query, coding, 0), query.size()) << trial;
  }
}

TEST(Golden, BiologicalCodingLosesOnlySerAgy) {
  // bio::random_coding_sequence samples the full biological codon set;
  // the only mismatches FabP matching can produce are the dropped AGY
  // serine codons, each costing exactly 2 of its 3 elements.
  util::Xoshiro256 rng{72};
  for (int trial = 0; trial < 20; ++trial) {
    const ProteinSequence protein = bio::random_protein(40, rng);
    const NucleotideSequence coding =
        bio::random_coding_sequence(protein, rng);
    std::size_t agy = 0;
    for (std::size_t i = 0; i < protein.size(); ++i)
      if (protein[i] == bio::AminoAcid::Ser &&
          coding[3 * i] == bio::Nucleotide::A)
        ++agy;
    const auto query = back_translate(protein);
    EXPECT_EQ(golden_score_at(query, coding, 0), query.size() - 2 * agy)
        << trial;
  }
}

TEST(Golden, EveryCodonChoiceOfLeuArgSerScoresFull) {
  // Degenerate positions: all codon choices for the six-fold degenerate
  // amino acids must be accepted (minus the documented AGY-Ser drop).
  for (bio::AminoAcid aa : {bio::AminoAcid::Leu, bio::AminoAcid::Arg}) {
    ProteinSequence p;
    p.push_back(aa);
    const auto query = back_translate(p);
    for (const bio::Codon& c : bio::codons_for(aa)) {
      NucleotideSequence ref{SeqKind::Rna,
                             {c.first, c.second, c.third}};
      EXPECT_EQ(golden_score_at(query, ref, 0), 3u)
          << bio::to_three_letter(aa) << " " << c.to_string();
    }
  }
}

TEST(Golden, SerAgyCodonsScorePartial) {
  ProteinSequence p;
  p.push_back(bio::AminoAcid::Ser);
  const auto query = back_translate(p);
  // AGU: A vs U (no), G vs C (no), U vs D (yes) -> 1.
  const NucleotideSequence agu =
      NucleotideSequence::parse(SeqKind::Rna, "AGU");
  EXPECT_EQ(golden_score_at(query, agu, 0), 1u);
}

TEST(Golden, HitsAtThreshold) {
  util::Xoshiro256 rng{73};
  const ProteinSequence protein = bio::random_protein(10, rng);
  const NucleotideSequence coding = random_template_coding(protein, rng);
  NucleotideSequence ref = bio::random_dna(500, rng);
  for (std::size_t i = 0; i < coding.size(); ++i) ref[137 + i] = coding[i];

  const auto query = back_translate(protein);
  const auto hits = golden_hits(query, ref, static_cast<std::uint32_t>(
                                                query.size()));
  ASSERT_FALSE(hits.empty());
  bool found = false;
  for (const Hit& h : hits)
    if (h.position == 137) found = true;
  EXPECT_TRUE(found);
}

TEST(Golden, ThresholdMonotonicity) {
  util::Xoshiro256 rng{79};
  const ProteinSequence protein = bio::random_protein(8, rng);
  const NucleotideSequence ref = bio::random_dna(400, rng);
  const auto query = back_translate(protein);
  std::size_t prev = golden_hits(query, ref, 0).size();
  EXPECT_EQ(prev, ref.size() - query.size() + 1);
  for (std::uint32_t t = 1; t <= query.size(); t += 4) {
    const std::size_t n = golden_hits(query, ref, t).size();
    EXPECT_LE(n, prev);
    prev = n;
  }
}

TEST(Golden, ScoreNeverBelowPlainHamming) {
  // Degenerate matching accepts at least everything an exact comparison
  // of any single back-translated representative accepts.
  util::Xoshiro256 rng{83};
  for (int trial = 0; trial < 10; ++trial) {
    const ProteinSequence protein = bio::random_protein(12, rng);
    const NucleotideSequence representative =
        bio::random_coding_sequence(protein, rng);
    const NucleotideSequence ref = bio::random_dna(300, rng);
    const auto query = back_translate(protein);
    for (std::size_t p = 0; p + query.size() <= ref.size(); p += 7) {
      const std::uint32_t degenerate = golden_score_at(query, ref, p);
      const std::uint32_t exact =
          align::sliding_score_at(representative, ref, p);
      EXPECT_GE(degenerate, exact) << trial << " " << p;
    }
  }
}

TEST(Golden, EncodedPathIdenticalToBehavioral) {
  // golden_hits (behavioral elements) vs golden_hits_encoded (through the
  // instruction encoding and the generated comparator LUTs).
  util::Xoshiro256 rng{89};
  for (int trial = 0; trial < 10; ++trial) {
    const ProteinSequence protein = bio::random_protein(15, rng);
    const NucleotideSequence ref = bio::random_dna(600, rng);
    const auto elements = back_translate(protein);
    const EncodedQuery encoded = encode_query(protein);
    for (std::uint32_t t : {20u, 30u, 40u}) {
      EXPECT_EQ(golden_hits(elements, ref, t),
                golden_hits_encoded(encoded, ref, t))
          << trial << " t=" << t;
    }
  }
}

TEST(Golden, ParallelIdenticalToSerial) {
  util::Xoshiro256 rng{97};
  util::ThreadPool pool{4};
  const ProteinSequence protein = bio::random_protein(12, rng);
  const NucleotideSequence ref = bio::random_dna(2000, rng);
  const auto query = back_translate(protein);
  for (std::uint32_t t : {15u, 25u, 36u}) {
    EXPECT_EQ(golden_hits_parallel(query, ref, t, pool),
              golden_hits(query, ref, t));
  }
}

TEST(Golden, ParallelMergeIsDeterministic) {
  // The chunk-ordered merge must reproduce the serial scan *exactly* —
  // same contents in the same order — for any pool size, chunk boundary
  // layout, and run (no scheduling dependence).  threshold 0 makes every
  // position a hit, so ordering mistakes cannot hide.
  util::Xoshiro256 rng{113};
  const ProteinSequence protein = bio::random_protein(9, rng);
  const auto query = back_translate(protein);
  for (std::size_t len : {27u, 500u, 1000u, 1025u}) {
    const NucleotideSequence ref = bio::random_dna(len, rng);
    const auto serial = golden_hits(query, ref, 0);
    for (std::size_t threads : {1u, 2u, 3u, 5u, 8u, 16u}) {
      util::ThreadPool pool{threads};
      for (int run = 0; run < 3; ++run) {
        const auto parallel = golden_hits_parallel(query, ref, 0, pool);
        ASSERT_EQ(parallel.size(), serial.size()) << len << " " << threads;
        for (std::size_t i = 0; i < serial.size(); ++i)
          ASSERT_EQ(parallel[i], serial[i])
              << len << " " << threads << " index " << i;
      }
    }
  }
}

TEST(Golden, EmptyAndShortInputs) {
  const std::vector<BackElement> empty;
  const NucleotideSequence ref = NucleotideSequence::parse(SeqKind::Dna,
                                                           "ACGT");
  EXPECT_TRUE(golden_hits(empty, ref, 0).empty());

  util::Xoshiro256 rng{101};
  const auto query = back_translate(bio::random_protein(10, rng));
  const NucleotideSequence tiny = bio::random_dna(10, rng);
  EXPECT_TRUE(golden_hits(query, tiny, 0).empty());
}

TEST(Golden, AlignProteinConvenience) {
  util::Xoshiro256 rng{103};
  const ProteinSequence protein = bio::random_protein(10, rng);
  const NucleotideSequence coding = random_template_coding(protein, rng);
  const auto hits = align_protein(protein, coding, 30);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].position, 0u);
  EXPECT_EQ(hits[0].score, 30u);
}

TEST(Golden, CodonsScoreIndependently) {
  // Type III dependencies never cross codon boundaries, so the score of a
  // two-residue query factors into per-codon scores — exhaustively over
  // all residue pairs and a sample of reference windows.
  util::Xoshiro256 rng{109};
  for (bio::AminoAcid a : bio::kAllAminoAcids) {
    for (bio::AminoAcid b : bio::kAllAminoAcids) {
      ProteinSequence pair;
      pair.push_back(a);
      pair.push_back(b);
      const auto q_pair = back_translate(pair);
      ProteinSequence first, second;
      first.push_back(a);
      second.push_back(b);
      const auto q_a = back_translate(first);
      const auto q_b = back_translate(second);

      const NucleotideSequence window = bio::random_dna(6, rng);
      const auto combined = golden_score_at(q_pair, window, 0);
      const auto part_a = golden_score_at(q_a, window, 0);
      const auto part_b =
          golden_score_at(q_b, window.subsequence(3, 3), 0);
      EXPECT_EQ(combined, part_a + part_b)
          << bio::to_three_letter(a) << "+" << bio::to_three_letter(b);
    }
  }
}

TEST(Golden, DnaReferenceWorksLikeRna) {
  // T and U share a code; a DNA-kind reference matches identically.
  util::Xoshiro256 rng{107};
  const ProteinSequence protein = bio::random_protein(8, rng);
  const NucleotideSequence coding_rna =
      bio::random_coding_sequence(protein, rng);
  const NucleotideSequence coding_dna{SeqKind::Dna, coding_rna.bases()};
  const auto query = back_translate(protein);
  EXPECT_EQ(golden_score_at(query, coding_rna, 0),
            golden_score_at(query, coding_dna, 0));
}

}  // namespace
}  // namespace fabp::core
