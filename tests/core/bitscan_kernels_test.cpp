// Differential coverage of the ISA-dispatched scan kernels: every kernel
// reachable on the host (scalar, swar64 and — CPU permitting — avx2,
// avx512) must produce output bit-for-bit identical to the golden scalar
// oracle on the same inputs, for single-query ranges and for multi-query
// batches, including block-boundary, guard-word and size < 64 edge cases.
// tools/check.sh additionally runs the whole suite under
// FABP_FORCE_ISA=swar64 so the env-override dispatch path is exercised
// end to end.

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/core/bitscan.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;

std::vector<BackElement> random_elements(std::size_t n,
                                         util::Xoshiro256& rng) {
  std::vector<BackElement> q;
  q.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.next() % 3) {
      case 0:
        q.push_back(BackElement::make_exact(bio::nucleotide_from_code(
            static_cast<std::uint8_t>(rng.next() % 4))));
        break;
      case 1:
        q.push_back(BackElement::make_conditional(
            static_cast<Condition>(rng.next() % 4)));
        break;
      default:
        q.push_back(BackElement::make_dependent(
            static_cast<Function>(rng.next() % 4)));
        break;
    }
  }
  return q;
}

std::vector<const ScanKernel*> reachable_kernels() {
  std::vector<const ScanKernel*> kernels;
  for (ScanIsa isa : kAllScanIsas)
    if (const ScanKernel* kernel = scan_kernel_for(isa))
      kernels.push_back(kernel);
  return kernels;
}

std::vector<Hit> kernel_hits(const ScanKernel& kernel,
                             const BitScanQuery& query,
                             const BitScanReference& reference,
                             std::uint32_t threshold) {
  std::vector<Hit> hits;
  if (query.empty() || reference.size() < query.size()) return hits;
  kernel.range(query, reference, threshold, 0,
               reference.size() - query.size() + 1, hits);
  return hits;
}

TEST(ScanKernels, PortableKernelsAlwaysReachable) {
  EXPECT_NE(scan_kernel_for(ScanIsa::Scalar), nullptr);
  EXPECT_NE(scan_kernel_for(ScanIsa::Swar64), nullptr);
}

TEST(ScanKernels, IsaNamesParse) {
  ScanIsa isa;
  EXPECT_TRUE(scan_isa_from_name("scalar", isa));
  EXPECT_EQ(isa, ScanIsa::Scalar);
  EXPECT_TRUE(scan_isa_from_name("swar64", isa));
  EXPECT_EQ(isa, ScanIsa::Swar64);
  EXPECT_TRUE(scan_isa_from_name("avx2", isa));
  EXPECT_EQ(isa, ScanIsa::Avx2);
  EXPECT_TRUE(scan_isa_from_name("avx512", isa));
  EXPECT_EQ(isa, ScanIsa::Avx512);
  EXPECT_TRUE(scan_isa_from_name("avx512vpopcnt", isa));
  EXPECT_EQ(isa, ScanIsa::Avx512Vpopcnt);
  EXPECT_FALSE(scan_isa_from_name("sse9", isa));
  EXPECT_FALSE(scan_isa_from_name("", isa));
}

TEST(ScanKernels, ActiveKernelIsReachable) {
  const ScanKernel& active = active_scan_kernel();
  EXPECT_EQ(scan_kernel_for(active.isa), &active);
  EXPECT_GE(active.lanes, 1u);
}

TEST(ScanKernels, EveryKernelMatchesGoldenOnRandomCases) {
  util::Xoshiro256 rng{307};
  const auto kernels = reachable_kernels();
  ASSERT_GE(kernels.size(), 2u);
  for (int trial = 0; trial < 10; ++trial) {
    const auto query = random_elements(1 + rng.next() % 40, rng);
    const NucleotideSequence ref =
        bio::random_dna(query.size() + rng.next() % 1500, rng);
    const BitScanQuery compiled{query};
    const BitScanReference reference{ref};
    for (std::uint32_t t :
         {0u, static_cast<std::uint32_t>(query.size() / 2),
          static_cast<std::uint32_t>(query.size())}) {
      const auto golden = golden_hits(query, ref, t);
      for (const ScanKernel* kernel : kernels)
        EXPECT_EQ(kernel_hits(*kernel, compiled, reference, t), golden)
            << kernel->name << " trial=" << trial << " t=" << t;
    }
  }
}

TEST(ScanKernels, BlockBoundaryAndGuardWordSizes) {
  // Reference sizes straddling every kernel's block width (64, 256, 512)
  // and the word boundaries where the guard-word padding is what keeps
  // the trailing unaligned fetches in bounds.
  util::Xoshiro256 rng{311};
  const auto kernels = reachable_kernels();
  const auto query = random_elements(12, rng);
  for (std::size_t size :
       {12u, 13u, 63u, 64u, 65u, 75u, 127u, 128u, 129u, 255u, 256u, 257u,
        320u, 511u, 512u, 513u, 575u, 576u, 1023u, 1024u, 1025u}) {
    const NucleotideSequence ref = bio::random_dna(size, rng);
    const BitScanQuery compiled{query};
    const BitScanReference reference{ref};
    for (std::uint32_t t : {0u, 6u, 12u}) {
      const auto golden = golden_hits(query, ref, t);
      for (const ScanKernel* kernel : kernels)
        EXPECT_EQ(kernel_hits(*kernel, compiled, reference, t), golden)
            << kernel->name << " size=" << size << " t=" << t;
    }
  }
}

TEST(ScanKernels, TinyReferencesUnderOneWord) {
  // size < 64: a single partial block for every kernel.
  util::Xoshiro256 rng{313};
  for (std::size_t qlen : {1u, 2u, 5u}) {
    const auto query = random_elements(qlen, rng);
    for (std::size_t size = qlen; size < 64; size += 7) {
      const NucleotideSequence ref = bio::random_dna(size, rng);
      const BitScanQuery compiled{query};
      const BitScanReference reference{ref};
      for (std::uint32_t t : {0u, static_cast<std::uint32_t>(qlen)}) {
        const auto golden = golden_hits(query, ref, t);
        for (const ScanKernel* kernel : reachable_kernels())
          EXPECT_EQ(kernel_hits(*kernel, compiled, reference, t), golden)
              << kernel->name << " qlen=" << qlen << " size=" << size
              << " t=" << t;
      }
    }
  }
}

TEST(ScanKernels, RangeSplitsAgreeAcrossKernels) {
  // Chunked scans (the threaded path) must stitch identically whatever
  // the kernel's block width — splits land mid-block for the wide ones.
  util::Xoshiro256 rng{317};
  const auto query = random_elements(10, rng);
  const NucleotideSequence ref = bio::random_dna(1400, rng);
  const BitScanQuery compiled{query};
  const BitScanReference reference{ref};
  const auto golden = golden_hits(query, ref, 5);
  const std::size_t positions = ref.size() - query.size() + 1;
  for (const ScanKernel* kernel : reachable_kernels()) {
    for (std::size_t split : {1u, 63u, 64u, 255u, 257u, 512u, 700u}) {
      std::vector<Hit> stitched;
      kernel->range(compiled, reference, 5, 0, split, stitched);
      kernel->range(compiled, reference, 5, split, positions, stitched);
      EXPECT_EQ(stitched, golden) << kernel->name << " split=" << split;
    }
  }
}

TEST(ScanKernels, BatchMatchesPerQueryScans) {
  util::Xoshiro256 rng{331};
  const auto kernels = reachable_kernels();
  const NucleotideSequence ref = bio::random_dna(3000, rng);
  const BitScanReference reference{ref};

  std::vector<BitScanQuery> queries;
  std::vector<std::uint32_t> thresholds;
  std::vector<std::vector<BackElement>> raw;
  for (std::size_t q = 0; q < 9; ++q) {
    raw.push_back(random_elements(1 + rng.next() % 50, rng));
    queries.emplace_back(raw.back());
    thresholds.push_back(
        static_cast<std::uint32_t>(rng.next() % (raw.back().size() + 2)));
  }

  for (const ScanKernel* kernel : kernels) {
    std::vector<std::vector<Hit>> outs(queries.size());
    kernel->range_batch(queries.data(), thresholds.data(), queries.size(),
                        reference, 0, ref.size(), outs.data());
    for (std::size_t q = 0; q < queries.size(); ++q)
      EXPECT_EQ(outs[q], golden_hits(raw[q], ref, thresholds[q]))
          << kernel->name << " q=" << q;
  }
}

TEST(ScanKernels, BatchDispatchSerialAndPooledAreIdentical) {
  util::Xoshiro256 rng{337};
  const NucleotideSequence ref = bio::random_dna(4000, rng);
  const BitScanReference reference{ref};

  std::vector<BitScanQuery> queries;
  std::vector<std::uint32_t> thresholds;
  std::vector<std::vector<Hit>> expected;
  for (std::size_t q = 0; q < 8; ++q) {
    const ProteinSequence protein =
        bio::random_protein(4 + rng.next() % 25, rng);
    const auto elements = back_translate(protein);
    const auto threshold =
        static_cast<std::uint32_t>(elements.size() * 3 / 4);
    queries.emplace_back(elements);
    thresholds.push_back(threshold);
    expected.push_back(bitscan_hits(queries.back(), reference, threshold));
  }

  EXPECT_EQ(bitscan_hits_batch(queries, reference, thresholds), expected);
  for (std::size_t threads : {1u, 2u, 5u}) {
    util::ThreadPool pool{threads};
    EXPECT_EQ(bitscan_hits_batch(queries, reference, thresholds, &pool),
              expected)
        << threads;
  }
}

TEST(ScanKernels, BatchHandlesDegenerateQueries) {
  util::Xoshiro256 rng{347};
  const NucleotideSequence ref = bio::random_dna(200, rng);
  const BitScanReference reference{ref};

  const auto longq = random_elements(ref.size() + 10, rng);  // > reference
  const auto shortq = random_elements(8, rng);
  std::vector<BitScanQuery> queries;
  queries.emplace_back();        // empty query
  queries.emplace_back(longq);   // longer than the reference
  queries.emplace_back(shortq);  // threshold above qlen (below)
  queries.emplace_back(shortq);  // normal
  const std::vector<std::uint32_t> thresholds{0, 0, 9, 4};

  const auto outs = bitscan_hits_batch(queries, reference, thresholds);
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_TRUE(outs[0].empty());
  EXPECT_TRUE(outs[1].empty());
  EXPECT_TRUE(outs[2].empty());
  EXPECT_EQ(outs[3], golden_hits(shortq, ref, 4));

  EXPECT_THROW(
      bitscan_hits_batch(queries, reference,
                         std::vector<std::uint32_t>{0, 0}),
      std::invalid_argument);
  EXPECT_TRUE(bitscan_hits_batch({}, reference, {}).empty());
}

TEST(ScanKernels, WideKernelsImplyCpuSupport) {
  // scan_kernel_for must never hand out a kernel the host cannot run.
  if (const ScanKernel* kernel = scan_kernel_for(ScanIsa::Avx2)) {
    EXPECT_EQ(kernel->lanes, 256u);
  }
  if (const ScanKernel* kernel = scan_kernel_for(ScanIsa::Avx512)) {
    EXPECT_EQ(kernel->lanes, 512u);
  }
  if (const ScanKernel* kernel = scan_kernel_for(ScanIsa::Avx512Vpopcnt)) {
    // Implies the plain AVX-512 path too: vpopcnt is a superset.
    EXPECT_EQ(kernel->lanes, 512u);
    EXPECT_NE(scan_kernel_for(ScanIsa::Avx512), nullptr);
  }
}

}  // namespace
}  // namespace fabp::core
