#include "fabp/core/threshold.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/core/golden.hpp"

namespace fabp::core {
namespace {

using bio::AminoAcid;
using bio::Nucleotide;

TEST(Threshold, ElementProbabilities) {
  EXPECT_DOUBLE_EQ(
      element_match_probability(BackElement::make_exact(Nucleotide::G)),
      0.25);
  EXPECT_DOUBLE_EQ(element_match_probability(
                       BackElement::make_conditional(Condition::UorC)),
                   0.5);
  EXPECT_DOUBLE_EQ(element_match_probability(
                       BackElement::make_conditional(Condition::NotG)),
                   0.75);
  EXPECT_DOUBLE_EQ(element_match_probability(
                       BackElement::make_dependent(Function::AnyD)),
                   1.0);
  EXPECT_DOUBLE_EQ(element_match_probability(
                       BackElement::make_dependent(Function::Stop3)),
                   0.375);
}

TEST(Threshold, EmpiricalProbabilitiesMatchModel) {
  // Monte-Carlo each element type against random bases + random history.
  util::Xoshiro256 rng{1101};
  std::vector<BackElement> all;
  for (Nucleotide n : bio::kAllNucleotides)
    all.push_back(BackElement::make_exact(n));
  for (auto c : {Condition::UorC, Condition::AorG, Condition::NotG,
                 Condition::AorC})
    all.push_back(BackElement::make_conditional(c));
  for (auto f : {Function::Stop3, Function::Leu3, Function::Arg3,
                 Function::AnyD})
    all.push_back(BackElement::make_dependent(f));

  constexpr int kDraws = 40'000;
  for (const BackElement& e : all) {
    int matches = 0;
    for (int i = 0; i < kDraws; ++i) {
      const auto r = bio::nucleotide_from_code(
          static_cast<std::uint8_t>(rng.bounded(4)));
      const auto im1 = bio::nucleotide_from_code(
          static_cast<std::uint8_t>(rng.bounded(4)));
      const auto im2 = bio::nucleotide_from_code(
          static_cast<std::uint8_t>(rng.bounded(4)));
      if (e.matches(r, im1, im2)) ++matches;
    }
    EXPECT_NEAR(static_cast<double>(matches) / kDraws,
                element_match_probability(e), 0.01)
        << to_string(e);
  }
}

TEST(Threshold, StatisticsAccumulate) {
  bio::ProteinSequence protein;
  protein.push_back(AminoAcid::Met);  // AUG: three Type I
  const auto stats = score_statistics(back_translate(protein));
  EXPECT_EQ(stats.elements, 3u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.75);
  EXPECT_DOUBLE_EQ(stats.variance, 3 * 0.25 * 0.75);
}

TEST(Threshold, FprMonotoneDecreasing) {
  util::Xoshiro256 rng{1103};
  const auto query = back_translate(bio::random_protein(40, rng));
  const auto stats = score_statistics(query);
  double prev = 1.0;
  for (std::uint32_t t = 0; t <= query.size(); t += 5) {
    const double fpr = stats.false_positive_rate(t);
    EXPECT_LE(fpr, prev + 1e-12);
    EXPECT_GE(fpr, 0.0);
    EXPECT_LE(fpr, 1.0);
    prev = fpr;
  }
  EXPECT_EQ(stats.false_positive_rate(0), 1.0);
  EXPECT_EQ(stats.false_positive_rate(
                static_cast<std::uint32_t>(query.size()) + 1),
            0.0);
}

TEST(Threshold, PredictedFprMatchesEmpiricalScan) {
  // The normal approximation must land near the measured random-hit rate.
  util::Xoshiro256 rng{1109};
  const bio::ProteinSequence protein = bio::random_protein(20, rng);
  const auto query = back_translate(protein);
  const auto stats = score_statistics(query);
  const bio::NucleotideSequence ref = bio::random_dna(300'000, rng);

  // Pick a threshold with a measurable tail (~1e-3).
  std::uint32_t threshold = 0;
  while (stats.false_positive_rate(threshold) > 1e-3) ++threshold;
  const double predicted = stats.false_positive_rate(threshold);

  const auto hits = golden_hits(query, ref, threshold);
  const double offsets = static_cast<double>(ref.size() - query.size() + 1);
  const double measured = static_cast<double>(hits.size()) / offsets;
  // Within a factor ~2 (tail approximations + element correlation).
  EXPECT_GT(measured, predicted / 2.5);
  EXPECT_LT(measured, predicted * 2.5);
}

TEST(Threshold, ForExpectedHitsScalesWithDatabase) {
  util::Xoshiro256 rng{1117};
  const auto query = back_translate(bio::random_protein(50, rng));
  const auto small =
      threshold_for_expected_hits(query, 1 << 20, 1.0);
  const auto large =
      threshold_for_expected_hits(query, std::size_t{1} << 32, 1.0);
  EXPECT_GT(large, small);  // bigger space needs a stricter threshold
  EXPECT_LE(large, query.size() + 1);
}

TEST(Threshold, ForExpectedHitsControlsRandomHits) {
  util::Xoshiro256 rng{1123};
  const bio::ProteinSequence protein = bio::random_protein(25, rng);
  const auto query = back_translate(protein);
  const bio::NucleotideSequence ref = bio::random_dna(400'000, rng);
  const auto threshold =
      threshold_for_expected_hits(query, ref.size(), 1.0);
  const auto hits = golden_hits(query, ref, threshold);
  // Expected <= 1; allow generous Monte-Carlo slack.
  EXPECT_LE(hits.size(), 8u);
}

}  // namespace
}  // namespace fabp::core
