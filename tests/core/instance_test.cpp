#include "fabp/core/instance.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/core/golden.hpp"
#include "fabp/hw/optimize.hpp"
#include "fabp/hw/timing.hpp"

namespace fabp::core {
namespace {

using bio::Nucleotide;

// Full window for simulate_instance: two history elements then the aligned
// region of the reference.
std::vector<Nucleotide> window_at(const bio::NucleotideSequence& ref,
                                  std::size_t pos, std::size_t elements) {
  std::vector<Nucleotide> w;
  w.push_back(pos >= 2 ? ref[pos - 2] : Nucleotide::A);
  w.push_back(pos >= 1 ? ref[pos - 1] : Nucleotide::A);
  for (std::size_t i = 0; i < elements; ++i) w.push_back(ref[pos + i]);
  return w;
}

TEST(Instance, ScoreMatchesGoldenModelRandomized) {
  util::Xoshiro256 rng{401};
  for (const bool pipelined : {false, true}) {
    for (int trial = 0; trial < 4; ++trial) {
      const std::size_t residues = 4 + rng.bounded(8);
      const bio::ProteinSequence protein =
          bio::random_protein(residues, rng);
      const EncodedQuery query = encode_query(protein);
      const auto elements = back_translate(protein);

      InstanceConfig config;
      config.elements = query.size();
      config.threshold = 0;
      config.pipelined = pipelined;

      hw::Netlist nl;
      const InstancePorts ports = build_alignment_instance(nl, config);

      const bio::NucleotideSequence ref = bio::random_dna(200, rng);
      for (std::size_t pos = 2; pos + query.size() <= ref.size();
           pos += 13) {
        const auto window = window_at(ref, pos, query.size());
        const std::uint32_t hw_score =
            simulate_instance(nl, ports, config, query, window);
        EXPECT_EQ(hw_score, golden_score_at(elements, ref, pos))
            << "pipelined=" << pipelined << " pos=" << pos;
      }
    }
  }
}

TEST(Instance, HitFlagImplementsThreshold) {
  util::Xoshiro256 rng{409};
  const bio::ProteinSequence protein = bio::random_protein(6, rng);
  const EncodedQuery query = encode_query(protein);

  InstanceConfig config;
  config.elements = query.size();
  config.threshold = 15;
  config.pipelined = false;

  hw::Netlist nl;
  const InstancePorts ports = build_alignment_instance(nl, config);

  const bio::NucleotideSequence ref = bio::random_dna(400, rng);
  const bio::NucleotideSequence coding = random_template_coding(protein, rng);
  bio::NucleotideSequence planted = ref;
  for (std::size_t i = 0; i < coding.size(); ++i) planted[50 + i] = coding[i];

  bool saw_hit = false, saw_miss = false;
  for (std::size_t pos = 2; pos + query.size() <= planted.size(); pos += 3) {
    const auto window = window_at(planted, pos, query.size());
    const std::uint32_t score =
        simulate_instance(nl, ports, config, query, window);
    const bool hit = nl.value(ports.hit);
    EXPECT_EQ(hit, score >= config.threshold) << pos;
    saw_hit |= hit;
    saw_miss |= !hit;
  }
  EXPECT_TRUE(saw_hit);
  EXPECT_TRUE(saw_miss);
}

TEST(Instance, UnreachableThresholdNeverHits) {
  util::Xoshiro256 rng{419};
  const bio::ProteinSequence protein = bio::random_protein(4, rng);
  InstanceConfig config;
  config.elements = 12;
  config.threshold = 4096;  // > 2^score_bits
  config.pipelined = false;
  hw::Netlist nl;
  const InstancePorts ports = build_alignment_instance(nl, config);
  const auto window = window_at(bio::random_dna(20, rng), 2, 12);
  simulate_instance(nl, ports, config, encode_query(protein), window);
  EXPECT_FALSE(nl.value(ports.hit));
}

TEST(Instance, ResourceCountsMatchTheory) {
  InstanceConfig config;
  config.elements = 36;
  config.threshold = 20;
  config.pipelined = false;
  hw::Netlist nl;
  build_alignment_instance(nl, config);
  const hw::NetlistStats s = nl.stats();
  // 2 LUTs per comparator + Pop36 (33) + threshold adder (score width).
  EXPECT_EQ(s.luts, 2u * 36 + hw::popcounter_luts_handcrafted(36) + 6);
  EXPECT_EQ(s.ffs, 0u);
}

TEST(Instance, PipeliningAddsRegistersAndMeetsClock) {
  InstanceConfig config;
  config.elements = 150;  // FabP-50
  config.threshold = 120;

  config.pipelined = false;
  hw::Netlist flat;
  build_alignment_instance(flat, config);
  const hw::TimingReport flat_timing = hw::analyze_timing(flat);

  config.pipelined = true;
  hw::Netlist piped;
  build_alignment_instance(piped, config);
  const hw::TimingReport piped_timing = hw::analyze_timing(piped);

  EXPECT_GT(piped.stats().ffs, flat.stats().ffs);
  EXPECT_LT(piped_timing.critical_path_ns, flat_timing.critical_path_ns);
  // The pipelined instance closes timing at the paper-implied 200 MHz.
  EXPECT_TRUE(piped_timing.meets(200e6))
      << piped_timing.critical_path_ns << " ns";
}

TEST(Instance, VerilogEmission) {
  InstanceConfig config;
  config.elements = 9;
  config.threshold = 5;
  config.pipelined = true;
  const hw::VerilogModule m = emit_instance_module(config);
  EXPECT_EQ(m.name, "fabp_instance");
  // Emission instantiates exactly the netlist's primitives.
  hw::Netlist reference;
  build_alignment_instance(reference, config);
  EXPECT_EQ(m.instance_count("LUT6"), reference.stats().luts);
  EXPECT_EQ(m.instance_count("FDRE"), reference.stats().ffs);
  EXPECT_GT(m.instance_count("FDRE"), 9u);
  EXPECT_NE(m.source.find("output wire hit"), std::string::npos);
}

TEST(Instance, PipelineStreamsBackToBackWindows) {
  // Feed a NEW reference window every clock (as the real datapath does at
  // one beat per cycle) and check that scores emerge 3 cycles later, in
  // order — i.e. the pipeline registers actually decouple the stages.
  util::Xoshiro256 rng{431};
  const bio::ProteinSequence protein = bio::random_protein(5, rng);
  const EncodedQuery query = encode_query(protein);
  const auto elements = back_translate(protein);

  InstanceConfig config;
  config.elements = query.size();
  config.threshold = 0;
  config.pipelined = true;

  hw::Netlist nl;
  const InstancePorts ports = build_alignment_instance(nl, config);

  // Static query bits.
  for (std::size_t i = 0; i < query.size(); ++i)
    for (unsigned b = 0; b < 6; ++b)
      nl.set_input(ports.query[i][b], query[i].bit(b));

  const bio::NucleotideSequence ref = bio::random_dna(100, rng);
  const std::size_t positions = 40;
  constexpr std::size_t kLatency = 3;

  // The score for the window driven during cycle c is registered at the
  // end of cycle c + kLatency - 1 (three FF stages).
  std::vector<std::uint32_t> observed;
  for (std::size_t cycle = 0; cycle < positions + kLatency - 1; ++cycle) {
    // Drive window for position `cycle` (pipelining: new input each clock).
    const std::size_t pos = std::min(cycle, positions - 1) + 2;
    for (std::size_t i = 0; i < query.size() + 2; ++i) {
      const auto code = bio::code(ref[pos - 2 + i]);
      nl.set_input(ports.ref[i][0], (code & 1) != 0);
      nl.set_input(ports.ref[i][1], (code & 2) != 0);
    }
    nl.settle();
    nl.clock();
    if (cycle + 1 >= kLatency)
      observed.push_back(
          static_cast<std::uint32_t>(hw::read_bus(nl, ports.score)));
  }

  ASSERT_EQ(observed.size(), positions);
  for (std::size_t p = 0; p < positions; ++p)
    EXPECT_EQ(observed[p], golden_score_at(elements, ref, p + 2)) << p;
}

TEST(Instance, FixedQuerySpecializationPreservesScores) {
  util::Xoshiro256 rng{439};
  const bio::ProteinSequence protein = bio::random_protein(8, rng);
  const EncodedQuery query = encode_query(protein);
  const auto elements = back_translate(protein);

  InstanceConfig config;
  config.elements = query.size();
  config.threshold = 12;
  config.pipelined = false;
  config.fixed_query = &query;

  hw::Netlist nl;
  const InstancePorts ports = build_alignment_instance(nl, config);
  std::vector<hw::NetId> keep = ports.score;
  keep.push_back(ports.hit);
  auto optimized = hw::optimize(nl, keep);

  // Substantially smaller than the runtime-query netlist.
  hw::Netlist runtime_nl;
  InstanceConfig runtime_cfg = config;
  runtime_cfg.fixed_query = nullptr;
  build_alignment_instance(runtime_nl, runtime_cfg);
  EXPECT_LT(optimized.stats.luts_after, runtime_nl.stats().luts);

  // And still scores correctly: drive only the reference inputs.
  const bio::NucleotideSequence ref = bio::random_dna(120, rng);
  hw::Netlist& opt = optimized.netlist;
  for (std::size_t pos = 2; pos + query.size() <= ref.size(); pos += 7) {
    for (std::size_t i = 0; i < query.size() + 2; ++i) {
      const auto code = bio::code(ref[pos - 2 + i]);
      opt.set_input(optimized.net_map[ports.ref[i][0]], (code & 1) != 0);
      opt.set_input(optimized.net_map[ports.ref[i][1]], (code & 2) != 0);
    }
    opt.settle();
    std::uint64_t score = 0;
    for (std::size_t b = 0; b < ports.score.size(); ++b)
      if (opt.value(optimized.net_map[ports.score[b]])) score |= 1ULL << b;
    EXPECT_EQ(score, golden_score_at(elements, ref, pos)) << pos;
    EXPECT_EQ(opt.value(optimized.net_map[ports.hit]),
              score >= config.threshold);
  }
}

TEST(Instance, FixedQueryLengthMismatchThrows) {
  util::Xoshiro256 rng{443};
  const EncodedQuery query = encode_query(bio::random_protein(4, rng));
  InstanceConfig config;
  config.elements = 15;  // != 12
  config.fixed_query = &query;
  hw::Netlist nl;
  EXPECT_THROW(build_alignment_instance(nl, config), std::invalid_argument);
}

TEST(Instance, RejectsZeroElements) {
  hw::Netlist nl;
  EXPECT_THROW(build_alignment_instance(nl, InstanceConfig{0, 0, false}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fabp::core
