#include "fabp/core/encoding.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fabp::core {
namespace {

using bio::AminoAcid;
using bio::Nucleotide;

TEST(Instruction, TypeIEncoding) {
  // Type I: opcode 00, nucleotide in b3b2, config 00.
  const Instruction a =
      Instruction::encode(BackElement::make_exact(Nucleotide::A));
  EXPECT_EQ(a.to_binary_string(), "000000");
  const Instruction u =
      Instruction::encode(BackElement::make_exact(Nucleotide::U));
  EXPECT_EQ(u.to_binary_string(), "001100");
  const Instruction g =
      Instruction::encode(BackElement::make_exact(Nucleotide::G));
  EXPECT_EQ(g.to_binary_string(), "001000");
  EXPECT_TRUE(a.is_exact());
  EXPECT_FALSE(a.is_conditional());
  EXPECT_FALSE(a.is_dependent());
}

TEST(Instruction, TypeIIEncoding) {
  // Type II: opcode 01, condition in b3b2 (U/C=00, A/G=01, G-bar=10,
  // A/C=11), config 00.
  EXPECT_EQ(Instruction::encode(BackElement::make_conditional(
                                    Condition::UorC)).to_binary_string(),
            "010000");
  EXPECT_EQ(Instruction::encode(BackElement::make_conditional(
                                    Condition::AorG)).to_binary_string(),
            "010100");
  EXPECT_EQ(Instruction::encode(BackElement::make_conditional(
                                    Condition::NotG)).to_binary_string(),
            "011000");
  EXPECT_EQ(Instruction::encode(BackElement::make_conditional(
                                    Condition::AorC)).to_binary_string(),
            "011100");
}

TEST(Instruction, TypeIIIEncodingMatchesPaperExamples) {
  // §III-B worked example: Arg third element = 110001, Stop third = 100010.
  EXPECT_EQ(Instruction::encode(BackElement::make_dependent(Function::Arg3))
                .to_binary_string(),
            "110001");
  EXPECT_EQ(Instruction::encode(BackElement::make_dependent(Function::Stop3))
                .to_binary_string(),
            "100010");
  // Leu (F:01) selects ref[i-2] MSB (config 11); D has no dependency.
  EXPECT_EQ(Instruction::encode(BackElement::make_dependent(Function::Leu3))
                .to_binary_string(),
            "101011");
  EXPECT_EQ(Instruction::encode(BackElement::make_dependent(Function::AnyD))
                .to_binary_string(),
            "111000");
}

TEST(Instruction, ConfigSelectors) {
  EXPECT_EQ(Instruction::encode(BackElement::make_dependent(Function::Arg3))
                .config(),
            ConfigSel::RefIm2Lsb);
  EXPECT_EQ(Instruction::encode(BackElement::make_dependent(Function::Stop3))
                .config(),
            ConfigSel::RefIm1Msb);
  EXPECT_EQ(Instruction::encode(BackElement::make_dependent(Function::Leu3))
                .config(),
            ConfigSel::RefIm2Msb);
  EXPECT_EQ(Instruction::encode(BackElement::make_dependent(Function::AnyD))
                .config(),
            ConfigSel::None);
  EXPECT_EQ(Instruction::encode(BackElement::make_exact(Nucleotide::C))
                .config(),
            ConfigSel::None);
}

std::vector<BackElement> all_valid_elements() {
  std::vector<BackElement> out;
  for (Nucleotide n : bio::kAllNucleotides)
    out.push_back(BackElement::make_exact(n));
  for (auto c : {Condition::UorC, Condition::AorG, Condition::NotG,
                 Condition::AorC})
    out.push_back(BackElement::make_conditional(c));
  for (auto f : {Function::Stop3, Function::Leu3, Function::Arg3,
                 Function::AnyD})
    out.push_back(BackElement::make_dependent(f));
  return out;
}

TEST(Instruction, EncodeDecodeRoundTripAllElements) {
  for (const BackElement& e : all_valid_elements()) {
    const Instruction i = Instruction::encode(e);
    EXPECT_EQ(i.decode(), e) << i.to_binary_string();
  }
}

TEST(Instruction, AllTwelveEncodingsDistinct) {
  std::set<std::uint8_t> seen;
  for (const BackElement& e : all_valid_elements())
    seen.insert(Instruction::encode(e).bits());
  EXPECT_EQ(seen.size(), 12u);
}

TEST(Instruction, DecodeRejectsMalformed) {
  // Type I with nonzero config.
  EXPECT_THROW(Instruction{0b000001}.decode(), std::invalid_argument);
  // Type III with b2 set.
  EXPECT_THROW(Instruction{0b100110}.decode(), std::invalid_argument);
  // Type III with wrong config for the function (Stop with config 01).
  EXPECT_THROW(Instruction{0b100001}.decode(), std::invalid_argument);
}

TEST(Instruction, ExhaustiveSixBitSpace) {
  // Every one of the 64 raw patterns either decodes to an element whose
  // re-encoding is bit-identical (canonical patterns), or throws
  // (patterns encode() never emits).  Exactly 12 are canonical.
  std::size_t canonical = 0;
  for (std::uint8_t bits = 0; bits < 64; ++bits) {
    const Instruction instr{bits};
    try {
      const BackElement element = instr.decode();
      EXPECT_EQ(Instruction::encode(element), instr)
          << instr.to_binary_string();
      ++canonical;
    } catch (const std::invalid_argument&) {
      // non-canonical pattern: fine
    }
  }
  EXPECT_EQ(canonical, 12u);
}

TEST(Instruction, SixBitMask) {
  const Instruction i{0xFF};
  EXPECT_EQ(i.bits(), 0b111111);
}

TEST(EncodeQuery, PaperExampleFullQuery) {
  // Met-Phe-Ser-Arg-Stop, all 15 instructions (our §III-B layout).
  bio::ProteinSequence q = bio::ProteinSequence::parse("MFS");
  q.push_back(AminoAcid::Arg);
  q.push_back(AminoAcid::Stop);
  const EncodedQuery enc = encode_query(q);
  ASSERT_EQ(enc.size(), 15u);
  const std::vector<std::string> expected{
      "000000", "001100", "001000",   // A U G
      "001100", "001100", "010000",   // U U (U/C)
      "001100", "000100", "111000",   // U C D
      "011100", "001000", "110001",   // (A/C) G (F:10)
      "001100", "010100", "100010",   // U (A/G) (F:00)
  };
  for (std::size_t i = 0; i < enc.size(); ++i)
    EXPECT_EQ(enc[i].to_binary_string(), expected[i]) << i;
}

TEST(EncodeQuery, SixBitsPerElement) {
  const auto q = bio::ProteinSequence::parse("MFWK");
  const EncodedQuery enc = encode_query(q);
  EXPECT_EQ(encoded_query_bits(enc), q.size() * 3 * 6);
}

TEST(EncodeElements, MatchesEncodeQuery) {
  const auto q = bio::ProteinSequence::parse("ARNDCQEGHILKMFPSTWYV");
  EXPECT_EQ(encode_query(q), encode_elements(back_translate(q)));
}

}  // namespace
}  // namespace fabp::core
