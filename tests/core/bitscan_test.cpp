#include "fabp/core/bitscan.hpp"

#include <gtest/gtest.h>

#include "fabp/core/accelerator.hpp"
#include "fabp/bio/generate.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;
using bio::SeqKind;

// Random query built straight from elements so every kind (Type I per
// nucleotide, Type II per condition, Type III per function) appears, not
// just the mixes the codon table produces.
std::vector<BackElement> random_elements(std::size_t n,
                                         util::Xoshiro256& rng) {
  std::vector<BackElement> q;
  q.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.next() % 3) {
      case 0:
        q.push_back(BackElement::make_exact(
            bio::nucleotide_from_code(static_cast<std::uint8_t>(rng.next() % 4))));
        break;
      case 1:
        q.push_back(BackElement::make_conditional(
            static_cast<Condition>(rng.next() % 4)));
        break;
      default:
        q.push_back(BackElement::make_dependent(
            static_cast<Function>(rng.next() % 4)));
        break;
    }
  }
  return q;
}

std::vector<std::uint32_t> probe_thresholds(std::size_t qlen) {
  return {0u, static_cast<std::uint32_t>(qlen / 2),
          static_cast<std::uint32_t>(qlen)};
}

TEST(BitScan, DifferentialVsGoldenOnProteinQueries) {
  util::Xoshiro256 rng{211};
  for (int trial = 0; trial < 12; ++trial) {
    const ProteinSequence protein =
        bio::random_protein(5 + rng.next() % 30, rng);
    const NucleotideSequence ref =
        bio::random_dna(100 + rng.next() % 2000, rng);
    const auto elements = back_translate(protein);
    if (ref.size() < elements.size()) continue;
    for (std::uint32_t t : probe_thresholds(elements.size())) {
      EXPECT_EQ(bitscan_hits(elements, ref, t),
                golden_hits(elements, ref, t))
          << trial << " t=" << t;
    }
  }
}

TEST(BitScan, DifferentialVsGoldenOnArbitraryElementMixes) {
  // Includes Type III elements at offsets 0 and 1, where the oracle
  // substitutes A for the missing history.
  util::Xoshiro256 rng{223};
  for (int trial = 0; trial < 20; ++trial) {
    const auto query = random_elements(1 + rng.next() % 40, rng);
    const NucleotideSequence ref =
        bio::random_dna(query.size() + rng.next() % 600, rng);
    for (std::uint32_t t : probe_thresholds(query.size())) {
      EXPECT_EQ(bitscan_hits(query, ref, t), golden_hits(query, ref, t))
          << trial << " t=" << t;
    }
  }
}

TEST(BitScan, DifferentialVsEncodedOracle) {
  util::Xoshiro256 rng{227};
  for (int trial = 0; trial < 8; ++trial) {
    const ProteinSequence protein = bio::random_protein(18, rng);
    const NucleotideSequence ref = bio::random_dna(700, rng);
    const EncodedQuery encoded = encode_query(protein);
    const BitScanQuery compiled{encoded};
    const BitScanReference reference{ref};
    for (std::uint32_t t : probe_thresholds(encoded.size())) {
      EXPECT_EQ(bitscan_hits(compiled, reference, t),
                golden_hits_encoded(encoded, ref, t))
          << trial << " t=" << t;
    }
  }
}

TEST(BitScan, DifferentialVsCycleLevelAccelerator) {
  util::Xoshiro256 rng{229};
  for (int trial = 0; trial < 6; ++trial) {
    const ProteinSequence protein = bio::random_protein(15, rng);
    const bio::PackedNucleotides packed{bio::random_dna(3000, rng)};
    const auto elements = back_translate(protein);
    for (std::uint32_t t : probe_thresholds(elements.size())) {
      AcceleratorConfig config;
      config.threshold = t;
      // The LUT path evaluates element-by-element through the generated
      // comparator LUTs — fully independent of the bit-sliced planes.
      config.use_lut_path = true;
      Accelerator accelerator{config};
      accelerator.load_query(protein);
      EXPECT_EQ(bitscan_hits(BitScanQuery{elements},
                             BitScanReference{packed}, t),
                accelerator.run(packed).hits)
          << trial << " t=" << t;
    }
  }
}

TEST(BitScan, EdgeCases) {
  util::Xoshiro256 rng{233};

  // Query length == reference length: exactly one position.
  const ProteinSequence protein = bio::random_protein(10, rng);
  const auto elements = back_translate(protein);
  const NucleotideSequence exact = bio::random_dna(elements.size(), rng);
  for (std::uint32_t t : probe_thresholds(elements.size()))
    EXPECT_EQ(bitscan_hits(elements, exact, t),
              golden_hits(elements, exact, t))
        << t;

  // Empty query: no hits, like the oracle.
  const std::vector<BackElement> empty;
  const NucleotideSequence ref = bio::random_dna(100, rng);
  EXPECT_TRUE(bitscan_hits(empty, ref, 0).empty());

  // Reference shorter than the query: no hits.
  const NucleotideSequence tiny = bio::random_dna(elements.size() - 1, rng);
  EXPECT_TRUE(bitscan_hits(elements, tiny, 0).empty());

  // Threshold above the query length: no hits (scores are capped at qlen).
  EXPECT_TRUE(bitscan_hits(elements, exact,
                           static_cast<std::uint32_t>(elements.size()) + 1)
                  .empty());

  // Empty reference.
  EXPECT_TRUE(bitscan_hits(elements, NucleotideSequence{}, 0).empty());
}

TEST(BitScan, RangeScanCoversArbitrarySplits) {
  util::Xoshiro256 rng{239};
  const auto query = random_elements(12, rng);
  const NucleotideSequence ref = bio::random_dna(500, rng);
  const BitScanQuery compiled{query};
  const BitScanReference reference{ref};
  const auto whole = bitscan_hits(compiled, reference, 6);

  for (std::size_t split : {1u, 63u, 64u, 65u, 200u, 488u, 489u, 1000u}) {
    std::vector<Hit> stitched;
    bitscan_range(compiled, reference, 6, 0, split, stitched);
    bitscan_range(compiled, reference, 6, split, ref.size(), stitched);
    EXPECT_EQ(stitched, whole) << split;
  }
}

TEST(BitScan, ParallelIdenticalToSerialIncludingOrder) {
  util::Xoshiro256 rng{241};
  const ProteinSequence protein = bio::random_protein(14, rng);
  const NucleotideSequence ref = bio::random_dna(5000, rng);
  const BitScanQuery compiled{back_translate(protein)};
  const BitScanReference reference{ref};
  for (std::size_t threads : {1u, 2u, 3u, 7u}) {
    util::ThreadPool pool{threads};
    for (std::uint32_t t : {0u, 20u, 42u}) {
      const auto serial = bitscan_hits(compiled, reference, t);
      const auto parallel =
          bitscan_hits_parallel(compiled, reference, t, pool);
      EXPECT_EQ(parallel, serial) << threads << " t=" << t;
    }
  }
}

TEST(BitScan, PlantedGeneScoresFullLength) {
  util::Xoshiro256 rng{251};
  const ProteinSequence protein = bio::random_protein(20, rng);
  const NucleotideSequence coding = random_template_coding(protein, rng);
  NucleotideSequence ref = bio::random_dna(2000, rng);
  for (std::size_t i = 0; i < coding.size(); ++i) ref[777 + i] = coding[i];

  const auto elements = back_translate(protein);
  const auto hits = bitscan_hits(
      elements, ref, static_cast<std::uint32_t>(elements.size()));
  bool found = false;
  for (const Hit& h : hits)
    if (h.position == 777 &&
        h.score == static_cast<std::uint32_t>(elements.size()))
      found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace fabp::core
