#include "fabp/core/mapper.hpp"

#include <gtest/gtest.h>

namespace fabp::core {
namespace {

TEST(Mapper, Fabp50FitsUnsegmented) {
  // FabP-50 (150 elements): Table I reports full-bandwidth operation,
  // i.e. a single segment at moderate LUT utilization.
  const FabpMapping m = map_design(hw::kintex7(), 150);
  EXPECT_TRUE(m.feasible);
  EXPECT_EQ(m.segments, 1u);
  EXPECT_EQ(m.segment_elements, 150u);
  EXPECT_EQ(m.bottleneck, Bottleneck::Bandwidth);
  // Table I: LUT 58%, FF 16%, BRAM 19%, DSP 31% — allow model tolerance.
  EXPECT_NEAR(m.lut_util, 0.58, 0.10);
  EXPECT_NEAR(m.ff_util, 0.16, 0.06);
  EXPECT_NEAR(m.bram_util, 0.19, 0.04);
  EXPECT_NEAR(m.dsp_util, 0.31, 0.04);
  // 12.2 GB/s effective of 12.8 nominal.
  EXPECT_NEAR(m.effective_bandwidth_bps / 1e9, 12.2, 0.2);
}

TEST(Mapper, Fabp250SegmentsAndLosesBandwidth) {
  // FabP-250 (750 elements): resource bound, multiple iterations per
  // beat, effective bandwidth collapses toward Table I's 3.4 GB/s.
  const FabpMapping m = map_design(hw::kintex7(), 750);
  EXPECT_TRUE(m.feasible);
  EXPECT_GT(m.segments, 2u);
  EXPECT_LE(m.segments, 5u);
  EXPECT_EQ(m.bottleneck, Bottleneck::Resources);
  EXPECT_GT(m.lut_util, 0.7);
  EXPECT_LE(m.lut_util, 1.0);
  EXPECT_NEAR(m.effective_bandwidth_bps / 1e9, 3.4, 0.8);
  EXPECT_GT(m.dsp_util, m.lut_util * 0.4);  // second DSP per instance
}

TEST(Mapper, BottleneckCrossoverNearPaperSeventy) {
  // §IV-B: "for sequences longer than ~70 [residues], the resource
  // utilization is the bottleneck; for shorter sequences the bandwidth".
  // Our calibrated model places the knee in the 60-100 residue range.
  std::size_t crossover = 0;
  for (std::size_t residues = 10; residues <= 250; ++residues) {
    const FabpMapping m = map_design(hw::kintex7(), residues * 3);
    if (m.bottleneck == Bottleneck::Resources) {
      crossover = residues;
      break;
    }
  }
  EXPECT_GE(crossover, 55u);
  EXPECT_LE(crossover, 105u);
}

TEST(Mapper, SegmentsMonotoneInQueryLength) {
  std::size_t prev = 1;
  for (std::size_t elements = 30; elements <= 900; elements += 30) {
    const FabpMapping m = map_design(hw::kintex7(), elements);
    EXPECT_GE(m.segments, prev) << elements;
    prev = m.segments;
  }
}

TEST(Mapper, EffectiveBandwidthFollowsOverlapModel) {
  // BW = nominal * min(axi_efficiency, 1/S): AXI stalls hide behind the
  // segment compute cycles once the datapath is the slower side.
  const double nominal = hw::kintex7().total_bandwidth_bps();
  const FabpMapping one = map_design(hw::kintex7(), 150);
  EXPECT_NEAR(one.effective_bandwidth_bps, nominal * one.axi_efficiency,
              1.0);
  const FabpMapping many = map_design(hw::kintex7(), 750);
  EXPECT_NEAR(many.effective_bandwidth_bps,
              nominal / static_cast<double>(many.segments), 1.0);
}

TEST(Mapper, UsedNeverExceedsCapacityWhenFeasible) {
  for (std::size_t elements : {30u, 150u, 300u, 600u, 750u, 900u}) {
    const FabpMapping m = map_design(hw::kintex7(), elements);
    ASSERT_TRUE(m.feasible) << elements;
    EXPECT_TRUE(m.used.fits_in(m.capacity)) << elements;
  }
}

TEST(Mapper, BiggerDeviceNeedsFewerSegments) {
  const FabpMapping k7 = map_design(hw::kintex7(), 750);
  const FabpMapping vu = map_design(hw::virtex_ultrascale_plus(), 750);
  EXPECT_LT(vu.segments, k7.segments);
  // §IV-B: "an FPGA with more LUTs can outperform the GPU-based
  // implementation" — more effective bandwidth on the larger part.
  EXPECT_GT(vu.effective_bandwidth_bps, k7.effective_bandwidth_bps);
}

TEST(Mapper, SingleChannelDeviceAlwaysUsesOneChannel) {
  for (std::size_t elements : {150u, 450u, 750u}) {
    const FabpMapping m = map_design(hw::kintex7(), elements);
    EXPECT_EQ(m.channels, 1u) << elements;
  }
}

TEST(Mapper, MultiChannelDeviceScalesShortQueries) {
  // On a 4-channel device a short query is bandwidth-bound, so the mapper
  // spends LUTs on extra channels (§III-C: "FabP is able to utilize
  // multiple channels as long as the FPGA has enough resources").
  const hw::FpgaDevice vu = hw::virtex_ultrascale_plus();
  const FabpMapping m = map_design(vu, 150);
  EXPECT_GT(m.channels, 1u);
  EXPECT_GT(m.effective_bandwidth_bps, vu.channel_bandwidth_bps);
}

TEST(Mapper, ChannelChoiceMaximizesBandwidth) {
  // Effective bandwidth with the chosen channel count is at least what any
  // single-channel mapping of the same query achieves.
  const hw::FpgaDevice vu = hw::virtex_ultrascale_plus();
  hw::FpgaDevice one_channel = vu;
  one_channel.memory_channels = 1;
  for (std::size_t elements : {150u, 450u, 750u}) {
    const FabpMapping multi = map_design(vu, elements);
    const FabpMapping single = map_design(one_channel, elements);
    EXPECT_GE(multi.effective_bandwidth_bps,
              single.effective_bandwidth_bps - 1.0)
        << elements;
  }
}

TEST(Mapper, BramBuffersTradeFfsForLutsAndBram) {
  // §IV-B: FabP keeps the query/stream buffers in FFs.  The BRAM variant
  // must show fewer FFs but more LUTs (fanout replication) and more BRAM —
  // i.e. the paper's choice is the cheaper one on the binding resource.
  MapperConstants ff_variant;
  MapperConstants bram_variant;
  bram_variant.buffers_in_bram = true;
  for (std::size_t elements : {150u, 750u}) {
    const FabpMapping ff = map_design(hw::kintex7(), elements, ff_variant);
    const FabpMapping bram =
        map_design(hw::kintex7(), elements, bram_variant);
    EXPECT_LT(bram.used.ffs, ff.used.ffs) << elements;
    EXPECT_GT(bram.used.bram_bits, ff.used.bram_bits) << elements;
    // Same segment count -> directly comparable LUT totals.
    if (bram.segments == ff.segments) {
      EXPECT_GT(bram.used.luts, ff.used.luts) << elements;
    }
    // The binding resource is LUTs, so the BRAM variant never beats the
    // FF variant on effective bandwidth.
    EXPECT_LE(bram.effective_bandwidth_bps,
              ff.effective_bandwidth_bps + 1.0)
        << elements;
  }
}

TEST(Mapper, TinyDeviceInfeasible) {
  hw::FpgaDevice tiny = hw::kintex7();
  tiny.capacity.luts = 1000;
  tiny.capacity.dsps = 8;
  const FabpMapping m = map_design(tiny, 150);
  EXPECT_FALSE(m.feasible);
}

TEST(Mapper, BreakdownSumsToUsedLuts) {
  const FabpMapping m = map_design(hw::kintex7(), 450);
  const std::size_t parts = m.comparator_luts + m.popcounter_luts +
                            m.mux_luts + m.accumulator_luts;
  // used = parts * overhead + fixed; check consistency within rounding.
  const MapperConstants c;
  EXPECT_NEAR(static_cast<double>(m.used.luts),
              static_cast<double>(parts) * c.lut_overhead +
                  static_cast<double>(m.fixed_luts),
              2.0);
}

TEST(Mapper, AxiEfficiencyPropagates) {
  hw::AxiTimingConfig perfect;
  perfect.inter_burst_gap = 0;
  perfect.page_miss_penalty = 0;
  const FabpMapping m = map_design(hw::kintex7(), 150, {}, perfect);
  EXPECT_DOUBLE_EQ(m.axi_efficiency, 1.0);
  EXPECT_NEAR(m.effective_bandwidth_bps, 12.8e9, 1.0);
}

}  // namespace
}  // namespace fabp::core
