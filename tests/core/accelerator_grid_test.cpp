// Parameterized sweep: the accelerator simulator must equal the golden
// model over a grid of (query length, threshold fraction, device), with
// planted genes guaranteeing hit-rich workloads.

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/core/accelerator.hpp"

namespace fabp::core {
namespace {

struct GridParam {
  std::size_t residues;
  int threshold_percent;
  bool big_device;

  friend std::ostream& operator<<(std::ostream& os, const GridParam& p) {
    return os << p.residues << "aa_t" << p.threshold_percent << "_"
              << (p.big_device ? "vu9p" : "k7");
  }
};

class AcceleratorGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(AcceleratorGrid, MatchesGoldenModel) {
  const GridParam param = GetParam();
  util::Xoshiro256 rng{1000 + param.residues * 7 +
                       static_cast<std::uint64_t>(param.threshold_percent)};

  const bio::ProteinSequence protein =
      bio::random_protein(param.residues, rng);
  bio::NucleotideSequence ref = bio::random_dna(4000, rng);
  const bio::NucleotideSequence coding = random_template_coding(protein, rng);
  const std::size_t pos = 700 + rng.bounded(2000);
  for (std::size_t i = 0; i < coding.size(); ++i) ref[pos + i] = coding[i];

  const auto elements = back_translate(protein);
  const auto threshold = static_cast<std::uint32_t>(
      elements.size() * static_cast<std::size_t>(param.threshold_percent) /
      100);

  AcceleratorConfig cfg;
  cfg.threshold = threshold;
  if (param.big_device) cfg.device = hw::virtex_ultrascale_plus();
  Accelerator acc{cfg};
  acc.load_query(protein);
  const AcceleratorRun run = acc.run(bio::PackedNucleotides{ref});

  EXPECT_EQ(run.hits, golden_hits(elements, ref, threshold));

  // The planted gene is present at full score when the threshold allows.
  if (param.threshold_percent <= 100) {
    bool found = false;
    for (const Hit& h : run.hits)
      if (h.position == pos) found = true;
    EXPECT_TRUE(found);
  }

  // Timing invariants hold on every grid point.
  EXPECT_GT(run.cycles, 0u);
  EXPECT_EQ(run.beats, (ref.size() + 255) / 256);
  EXPECT_LE(run.mapping.used.luts, run.mapping.capacity.luts);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AcceleratorGrid,
    ::testing::Values(
        GridParam{5, 60, false}, GridParam{5, 100, false},
        GridParam{30, 70, false}, GridParam{30, 90, false},
        GridParam{85, 80, false},   // first segmented length on the K7
        GridParam{85, 100, false},
        GridParam{130, 75, false},  // two segments
        GridParam{250, 80, false},  // four segments
        GridParam{250, 80, true},   // multi-channel device
        GridParam{60, 85, true}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

}  // namespace
}  // namespace fabp::core
