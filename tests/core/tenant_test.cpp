#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "fabp/bio/generate.hpp"
#include "fabp/core/engine.hpp"

// Versioned multi-tenant reference management (DESIGN.md §4g): named
// databases, typed admission errors, weighted fair-share dequeue,
// hot-swap-under-load determinism and epoch-style reclamation.  The
// check.sh tenant leg runs this binary under tsan; every assertion here
// is interleaving-independent.

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;

std::vector<ProteinSequence> make_queries(std::size_t count,
                                          util::Xoshiro256& rng) {
  std::vector<ProteinSequence> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    queries.push_back(bio::random_protein(6 + i % 6, rng));
  return queries;
}

std::uint32_t half_threshold(const ProteinSequence& query) {
  return static_cast<std::uint32_t>(query.size() * 3 / 2);
}

const DatabaseStatus& find_database(const std::vector<DatabaseStatus>& all,
                                    const std::string& name) {
  for (const DatabaseStatus& db : all)
    if (db.name == name) return db;
  throw std::runtime_error("no database status for " + name);
}

const TenantStatus& find_tenant(const std::vector<TenantStatus>& all,
                                const std::string& name) {
  for (const TenantStatus& tenant : all)
    if (tenant.name == name) return tenant;
  throw std::runtime_error("no tenant status for " + name);
}

TEST(Tenant, UnknownDatabaseFailsTyped) {
  util::Xoshiro256 rng{921};
  Engine engine;
  engine.upload_reference(bio::random_dna(5000, rng));

  RequestOptions options;
  options.database = "no-such-db";
  const ProteinSequence query = bio::random_protein(8, rng);
  Ticket ticket = engine.submit(query, half_threshold(query), options);
  ASSERT_TRUE(ticket.ready());
  const Expected<HostRunReport> outcome = ticket.wait();
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code, ErrorCode::UnknownDatabase);
}

// Requests carry a database name and are answered from that database's
// snapshot — two references resident at once, routed per request.
TEST(Tenant, RequestsRouteByDatabaseName) {
  util::Xoshiro256 rng{922};
  const NucleotideSequence ref_a = bio::random_dna(12000, rng);
  const NucleotideSequence ref_b = bio::random_dna(12000, rng);
  const ProteinSequence query = bio::random_protein(9, rng);
  const std::uint32_t threshold = half_threshold(query);

  // Sequential truth: one single-database engine per reference.
  std::vector<Hit> expected_a, expected_b;
  {
    Engine truth;
    truth.upload_reference(NucleotideSequence{ref_a});
    expected_a = truth.align_sync(query, threshold)->hits;
  }
  {
    Engine truth;
    truth.upload_reference(NucleotideSequence{ref_b});
    expected_b = truth.align_sync(query, threshold)->hits;
  }

  Engine engine;
  EXPECT_EQ(engine.upload_database("alpha", ref_a), 1u);
  EXPECT_EQ(engine.upload_database("beta", ref_b), 1u);
  EXPECT_TRUE(engine.has_database("alpha"));
  EXPECT_TRUE(engine.has_database("beta"));

  RequestOptions options;
  options.database = "alpha";
  Expected<HostRunReport> a =
      engine.submit(query, threshold, options).wait();
  options.database = "beta";
  Expected<HostRunReport> b =
      engine.submit(query, threshold, options).wait();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->hits, expected_a);
  EXPECT_EQ(b->hits, expected_b);
  EXPECT_EQ(a->generation, 1u);
  EXPECT_EQ(b->generation, 1u);
}

// A tenant's queue-depth quota bounds its own admissions without touching
// anyone else's; the refusal is typed and counted.
TEST(Tenant, QuotaExceededFailsTypedAndIsScopedToTheTenant) {
  util::Xoshiro256 rng{923};
  EngineConfig config;
  config.autostart = false;
  config.tenants = {{"paid", 4.0, 0}, {"free", 1.0, 2}};
  Engine engine{config};
  engine.upload_reference(bio::random_dna(5000, rng));

  const ProteinSequence query = bio::random_protein(8, rng);
  RequestOptions free_opts;
  free_opts.tenant = "free";
  RequestOptions paid_opts;
  paid_opts.tenant = "paid";

  std::vector<Ticket> queued;
  queued.push_back(engine.submit(query, half_threshold(query), free_opts));
  queued.push_back(engine.submit(query, half_threshold(query), free_opts));
  Ticket rejected = engine.submit(query, half_threshold(query), free_opts);
  ASSERT_TRUE(rejected.ready());
  const Expected<HostRunReport> refusal = rejected.wait();
  ASSERT_FALSE(refusal.has_value());
  EXPECT_EQ(refusal.error().code, ErrorCode::TenantQuotaExceeded);

  // The paid tenant is not affected by free's exhausted quota.
  queued.push_back(engine.submit(query, half_threshold(query), paid_opts));

  const std::vector<TenantStatus> tenants = engine.tenant_status();
  const TenantStatus& free_status = find_tenant(tenants, "free");
  EXPECT_EQ(free_status.quota, 2u);
  EXPECT_EQ(free_status.queue_depth, 2u);
  EXPECT_EQ(free_status.quota_rejections, 1u);
  EXPECT_DOUBLE_EQ(find_tenant(tenants, "paid").weight, 4.0);

  engine.start();
  for (Ticket& ticket : queued) EXPECT_TRUE(ticket.wait().has_value());
}

// Stride scheduling under backlog: with both tenants' queues non-empty,
// a weight-4 tenant is dequeued 4x as often as a weight-1 tenant at any
// instant — sampled mid-drain through tenant_status(), which snapshots
// the per-tenant dequeue counters under the queue lock.
TEST(Tenant, WeightedFairShareHoldsUnderBacklog) {
  util::Xoshiro256 rng{924};
  EngineConfig config;
  config.workers = 1;
  config.max_coalesce = 1;  // one dequeue per pick: exact stride sequence
  config.queue_capacity = 1024;
  config.autostart = false;
  config.tenants = {{"heavy", 4.0, 0}, {"light", 1.0, 0}};
  Engine engine{config};
  engine.upload_reference(bio::random_dna(20000, rng));

  const std::vector<ProteinSequence> queries = make_queries(6, rng);
  constexpr std::size_t kPerTenant = 200;
  std::vector<Ticket> tickets;
  tickets.reserve(2 * kPerTenant);
  for (std::size_t i = 0; i < kPerTenant; ++i) {
    const ProteinSequence& query = queries[i % queries.size()];
    RequestOptions options;
    options.tenant = "heavy";
    tickets.push_back(engine.submit(query, half_threshold(query), options));
    options.tenant = "light";
    tickets.push_back(engine.submit(query, half_threshold(query), options));
  }
  engine.start();

  // Sample while both tenants are still backlogged (heavy drains at
  // t = 250 total dequeues, light far later): inside the window, strict
  // stride keeps heavy's share within a small constant of 4/5 · t.
  std::size_t samples_in_window = 0;
  double worst_deviation = 0.0;
  for (int spin = 0; spin < 20000; ++spin) {
    const std::vector<TenantStatus> tenants = engine.tenant_status();
    const std::size_t heavy = find_tenant(tenants, "heavy").dequeued;
    const std::size_t light = find_tenant(tenants, "light").dequeued;
    const std::size_t total = heavy + light;
    if (total >= 2 * kPerTenant) break;
    if (total >= 25 && total <= 150) {
      ++samples_in_window;
      const double deviation =
          std::abs(static_cast<double>(heavy) -
                   0.8 * static_cast<double>(total));
      worst_deviation = std::max(worst_deviation, deviation);
    }
    std::this_thread::sleep_for(std::chrono::microseconds{200});
  }
  for (Ticket& ticket : tickets) ASSERT_TRUE(ticket.wait().has_value());

  ASSERT_GT(samples_in_window, 0u) << "drain outran the sampler";
  // A weight-blind FIFO over the alternating submission order would sit
  // at 0.5 · t (deviation ~45 at t = 150); stride stays within ±4.
  EXPECT_LE(worst_deviation, 4.0);
}

// Epoch-style reclamation, deterministically: queued requests pin the
// generation they were admitted under; a swap retires it but cannot
// reclaim it until the last of those requests settles.  The tickets stay
// alive throughout — settling, not Ticket destruction, releases the pin.
TEST(Tenant, RetiredGenerationReclaimsWhenLastRequestSettles) {
  util::Xoshiro256 rng{925};
  EngineConfig config;
  config.autostart = false;
  Engine engine{config};
  const NucleotideSequence ref1 = bio::random_dna(8000, rng);
  const NucleotideSequence ref2 = bio::random_dna(8000, rng);
  engine.upload_reference(NucleotideSequence{ref1});  // generation 1

  const ProteinSequence query = bio::random_protein(8, rng);
  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i)
    tickets.push_back(engine.submit(query, half_threshold(query)));

  engine.upload_reference(NucleotideSequence{ref2});  // generation 2

  {
    const DatabaseStatus db =
        find_database(engine.database_status(), Engine::kDefaultDatabase);
    EXPECT_EQ(db.active_generation, 2u);
    EXPECT_EQ(db.swaps, 2u);
    // The empty generation 0 was reclaimed by the first upload; the
    // queued requests still pin generation 1.
    EXPECT_EQ(db.reclaimed_generations, 1u);
    bool retired_gen1_pinned = false;
    for (const VersionedStore::GenerationStatus& gen : db.generations)
      if (gen.generation == 1 && !gen.active && gen.pins > 0)
        retired_gen1_pinned = true;
    EXPECT_TRUE(retired_gen1_pinned);
  }

  engine.start();
  for (Ticket& ticket : tickets) {
    const Expected<HostRunReport> outcome = ticket.wait();
    ASSERT_TRUE(outcome.has_value());
    // Admitted under generation 1, served by generation 1 — the swap in
    // between must not move the request.
    EXPECT_EQ(outcome->generation, 1u);
  }

  // All four settled (tickets still alive).  The worker drops the last
  // batch pin moments after fulfilling the last promise; poll briefly.
  bool reclaimed = false;
  for (int spin = 0; spin < 10000 && !reclaimed; ++spin) {
    const DatabaseStatus db =
        find_database(engine.database_status(), Engine::kDefaultDatabase);
    reclaimed = db.reclaimed_generations >= 2;
    if (!reclaimed) std::this_thread::sleep_for(std::chrono::microseconds{500});
  }
  EXPECT_TRUE(reclaimed)
      << "generation 1 still pinned after its last request settled";
}

// Hot swap under concurrent load: every response is hit-for-hit identical
// to a sequential run against the generation it was admitted under, for
// the software-tiled, hw-sim and sharded backends.
void swap_under_load_case(BackendKind kind, std::size_t shards) {
  util::Xoshiro256 rng{926};
  const NucleotideSequence ref1 = bio::random_dna(16000, rng);
  const NucleotideSequence ref2 = bio::random_dna(16000, rng);
  const std::vector<ProteinSequence> queries = make_queries(8, rng);

  EngineConfig config;
  config.backend = kind;
  config.shard.shard_count = shards;
  config.workers = 2;
  config.host.search_both_strands = true;

  // Per-generation sequential truth.
  std::vector<std::vector<Hit>> exp1, exp2;
  {
    Engine truth{config};
    truth.upload_reference(NucleotideSequence{ref1});
    for (const ProteinSequence& query : queries)
      exp1.push_back(truth.align_sync(query, half_threshold(query))->hits);
  }
  {
    Engine truth{config};
    truth.upload_reference(NucleotideSequence{ref2});
    for (const ProteinSequence& query : queries)
      exp2.push_back(truth.align_sync(query, half_threshold(query))->hits);
  }

  Engine engine{config};
  engine.upload_reference(NucleotideSequence{ref1});

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kPerClient = 30;
  std::atomic<std::size_t> wrong{0};
  std::atomic<std::size_t> errors{0};
  std::atomic<std::size_t> served_gen1{0};
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t q =
            (i * 2654435761u) % queries.size();  // decorrelate clients
        Ticket ticket =
            engine.submit(queries[q], half_threshold(queries[q]));
        const Expected<HostRunReport> outcome = ticket.wait();
        if (!outcome.has_value()) {
          ++errors;
          continue;
        }
        const std::vector<std::vector<Hit>>& expected =
            outcome->generation == 1 ? exp1 : exp2;
        if (outcome->generation != 1 && outcome->generation != 2)
          ++wrong;
        else if (outcome->hits != expected[q])
          ++wrong;
        if (outcome->generation == 1) ++served_gen1;
        ++completed;
      }
    });
  }
  // Swap mid-flight, once a fair share of requests has gone through the
  // first generation.
  while (completed.load() < kClients * kPerClient / 3)
    std::this_thread::sleep_for(std::chrono::microseconds{200});
  engine.upload_reference(NucleotideSequence{ref2});
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(errors.load(), 0u) << to_string(kind);
  EXPECT_EQ(wrong.load(), 0u) << to_string(kind);
  EXPECT_GT(served_gen1.load(), 0u) << to_string(kind);
  // A post-swap request is admitted under — and answered by — gen 2.
  const ProteinSequence& query = queries.front();
  const Expected<HostRunReport> fresh =
      engine.submit(query, half_threshold(query)).wait();
  ASSERT_TRUE(fresh.has_value()) << to_string(kind);
  EXPECT_EQ(fresh->generation, 2u) << to_string(kind);
  EXPECT_EQ(fresh->hits, exp2.front()) << to_string(kind);
}

TEST(Tenant, SwapUnderLoadIsHitForHitTiled) {
  swap_under_load_case(BackendKind::Tiled, 1);
}

TEST(Tenant, SwapUnderLoadIsHitForHitHwSim) {
  swap_under_load_case(BackendKind::HwSim, 1);
}

TEST(Tenant, SwapUnderLoadIsHitForHitSharded) {
  swap_under_load_case(BackendKind::HwSim, 4);
}

}  // namespace
}  // namespace fabp::core
