#include "fabp/core/report.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/core/accelerator.hpp"

namespace fabp::core {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;
using bio::ReferenceDatabase;

struct Fixture {
  ReferenceDatabase db;
  ProteinSequence query;
  std::size_t planted_record = 0;
  std::size_t planted_offset = 0;
};

Fixture make_fixture(std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  Fixture f;
  f.query = bio::random_protein(20, rng);
  const NucleotideSequence coding = random_template_coding(f.query, rng);

  f.db.add("background0", bio::random_dna(2000, rng));
  NucleotideSequence with_gene = bio::random_dna(3000, rng);
  f.planted_offset = 1200;
  for (std::size_t i = 0; i < coding.size(); ++i)
    with_gene[f.planted_offset + i] = coding[i];
  f.planted_record = f.db.add("target", with_gene);
  f.db.add("background1", bio::random_dna(1000, rng));
  return f;
}

std::vector<Hit> scan(const Fixture& f, std::uint32_t threshold) {
  AcceleratorConfig cfg;
  cfg.threshold = threshold;
  Accelerator acc{cfg};
  acc.load_query(f.query);
  return acc.run(f.db.packed()).hits;
}

TEST(Report, AnnotatesThePlantedHit) {
  const Fixture f = make_fixture(801);
  const auto hits = scan(f, 60);  // full score
  const auto annotated = annotate_hits(hits, f.db, f.query);
  ASSERT_FALSE(annotated.empty());
  const AnnotatedHit& best = annotated.front();
  EXPECT_EQ(best.record, f.planted_record);
  EXPECT_EQ(best.record_offset, f.planted_offset);
  EXPECT_DOUBLE_EQ(best.identity, 1.0);
  // The in-frame translation of the window is exactly the query protein.
  EXPECT_EQ(best.peptide, f.query);
  EXPECT_TRUE(best.confirmed);
  // Full BLOSUM self-score.
  const auto& m = align::SubstitutionMatrix::blosum62();
  int self = 0;
  for (bio::AminoAcid aa : f.query) self += m.score(aa, aa);
  EXPECT_EQ(best.blosum_score, self);
}

TEST(Report, DropsGuardAndBoundaryHits) {
  const Fixture f = make_fixture(809);
  // Threshold 0 produces hits everywhere, including guard regions.
  const auto hits = scan(f, 0);
  const auto annotated = annotate_hits(hits, f.db, f.query,
                                       AnnotateOptions{false, 0, 0.0});
  for (const AnnotatedHit& hit : annotated) {
    EXPECT_TRUE(f.db.window_within_record(hit.raw.position,
                                          f.query.size() * 3));
  }
}

TEST(Report, DedupKeepsBestInWindow) {
  const Fixture f = make_fixture(811);
  // Low threshold: the planted gene produces a cluster of nearby hits.
  const auto hits = scan(f, 40);
  AnnotateOptions opts;
  opts.dedup_window = 6;
  opts.confirm_with_sw = false;
  const auto annotated = annotate_hits(hits, f.db, f.query, opts);
  for (std::size_t i = 1; i < annotated.size(); ++i) {
    if (annotated[i].record != annotated[i - 1].record) continue;
    // After sorting by identity the offsets are not ordered; re-check by
    // scanning pairs.
  }
  // No two surviving hits on the same record are closer than the window.
  for (std::size_t i = 0; i < annotated.size(); ++i)
    for (std::size_t j = i + 1; j < annotated.size(); ++j) {
      if (annotated[i].record != annotated[j].record) continue;
      const std::size_t d =
          annotated[i].record_offset > annotated[j].record_offset
              ? annotated[i].record_offset - annotated[j].record_offset
              : annotated[j].record_offset - annotated[i].record_offset;
      EXPECT_GE(d, opts.dedup_window);
    }
}

TEST(Report, SwFilterRemovesWeakHits) {
  const Fixture f = make_fixture(821);
  const auto hits = scan(f, 42);  // 70% of 60 elements: noisy
  AnnotateOptions strict;
  strict.min_sw_fraction = 0.9;
  const auto filtered = annotate_hits(hits, f.db, f.query, strict);
  AnnotateOptions loose;
  loose.min_sw_fraction = 0.0;
  const auto unfiltered = annotate_hits(hits, f.db, f.query, loose);
  EXPECT_LE(filtered.size(), unfiltered.size());
  ASSERT_FALSE(filtered.empty());
  EXPECT_EQ(filtered.front().record_offset, f.planted_offset);
}

TEST(Report, SortedByIdentityDescending) {
  const Fixture f = make_fixture(823);
  const auto hits = scan(f, 40);
  const auto annotated = annotate_hits(hits, f.db, f.query);
  for (std::size_t i = 1; i < annotated.size(); ++i)
    EXPECT_GE(annotated[i - 1].identity, annotated[i].identity);
}

TEST(Report, ToStringContainsRecordName) {
  const Fixture f = make_fixture(827);
  const auto hits = scan(f, 60);
  const auto annotated = annotate_hits(hits, f.db, f.query);
  ASSERT_FALSE(annotated.empty());
  const std::string line = to_string(annotated.front(), f.db);
  EXPECT_NE(line.find("rec=target"), std::string::npos);
  EXPECT_NE(line.find("id=100"), std::string::npos);
  EXPECT_NE(line.find("sw="), std::string::npos);
}

TEST(Report, EmptyInputsAreFine) {
  const Fixture f = make_fixture(829);
  EXPECT_TRUE(annotate_hits({}, f.db, f.query).empty());
  EXPECT_TRUE(annotate_hits({Hit{0, 1}}, f.db, ProteinSequence{}).empty());
}

}  // namespace
}  // namespace fabp::core
