#include "fabp/core/array.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/core/golden.hpp"

namespace fabp::core {
namespace {

using bio::Nucleotide;

std::vector<Nucleotide> make_window(const bio::NucleotideSequence& ref,
                                    std::size_t pos, std::size_t n) {
  std::vector<Nucleotide> w;
  w.push_back(pos >= 2 ? ref[pos - 2] : Nucleotide::A);
  w.push_back(pos >= 1 ? ref[pos - 1] : Nucleotide::A);
  for (std::size_t i = 0; i < n; ++i) w.push_back(ref[pos + i]);
  return w;
}

TEST(InstanceArray, EveryInstanceMatchesGoldenModel) {
  util::Xoshiro256 rng{1301};
  for (const bool pipelined : {false, true}) {
    const bio::ProteinSequence protein = bio::random_protein(6, rng);
    const EncodedQuery query = encode_query(protein);
    const auto elements = back_translate(protein);

    ArrayConfig config;
    config.elements = query.size();
    config.instances = 7;
    config.pipelined = pipelined;

    hw::Netlist nl;
    const ArrayPorts ports = build_instance_array(nl, config);

    const bio::NucleotideSequence ref = bio::random_dna(300, rng);
    for (std::size_t pos = 2; pos + query.size() + config.instances <
                              ref.size();
         pos += 23) {
      const auto window = make_window(
          ref, pos, query.size() + config.instances - 1);
      const auto scores =
          simulate_array(nl, ports, config, query, window);
      ASSERT_EQ(scores.size(), config.instances);
      for (std::size_t k = 0; k < config.instances; ++k)
        EXPECT_EQ(scores[k], golden_score_at(elements, ref, pos + k))
            << "pipelined=" << pipelined << " pos=" << pos << " k=" << k;
    }
  }
}

TEST(InstanceArray, HitFlagsFollowThreshold) {
  util::Xoshiro256 rng{1303};
  const bio::ProteinSequence protein = bio::random_protein(5, rng);
  const EncodedQuery query = encode_query(protein);

  ArrayConfig config;
  config.elements = query.size();
  config.instances = 5;
  config.threshold = 10;

  hw::Netlist nl;
  const ArrayPorts ports = build_instance_array(nl, config);
  const bio::NucleotideSequence ref = bio::random_dna(120, rng);
  const auto window =
      make_window(ref, 2, query.size() + config.instances - 1);
  const auto scores = simulate_array(nl, ports, config, query, window);
  for (std::size_t k = 0; k < config.instances; ++k)
    EXPECT_EQ(nl.value(ports.hits[k]), scores[k] >= config.threshold) << k;
}

TEST(InstanceArray, ResourcesScaleLinearlyInInstances) {
  // The mapper's core assumption: N instances cost N x one instance
  // (comparators + pop-counter + threshold), sharing only the window.
  const auto luts_for = [](std::size_t instances) {
    ArrayConfig config;
    config.elements = 24;
    config.instances = instances;
    config.threshold = 12;
    hw::Netlist nl;
    build_instance_array(nl, config);
    return nl.stats().luts;
  };
  const std::size_t one = luts_for(1);
  EXPECT_EQ(luts_for(4), 4 * one);
  EXPECT_EQ(luts_for(9), 9 * one);
}

TEST(InstanceArray, SharedWindowFanout) {
  // Window inputs are shared: input count grows by 2 per extra instance
  // (one more stream element), not by 2*L_q.
  ArrayConfig config;
  config.elements = 30;
  config.instances = 1;
  hw::Netlist a;
  build_instance_array(a, config);
  config.instances = 9;
  hw::Netlist b;
  build_instance_array(b, config);
  EXPECT_EQ(b.stats().inputs - a.stats().inputs, 8u * 2u);
}

TEST(InstanceArray, RejectsZeroDimensions) {
  hw::Netlist nl;
  EXPECT_THROW(build_instance_array(nl, ArrayConfig{0, 4, 0, false}),
               std::invalid_argument);
  EXPECT_THROW(build_instance_array(nl, ArrayConfig{12, 0, 0, false}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fabp::core
