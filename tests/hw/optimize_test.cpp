#include "fabp/hw/optimize.hpp"

#include <gtest/gtest.h>

#include "fabp/hw/popcount.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::hw {
namespace {

const Lut6 kAnd2 = Lut6::from_function(
    [](std::uint8_t idx) { return (idx & 3) == 3; });
const Lut6 kXor2 = Lut6::from_function(
    [](std::uint8_t idx) { return ((idx ^ (idx >> 1)) & 1) != 0; });
const Lut6 kBuf = Lut6::from_function(
    [](std::uint8_t idx) { return (idx & 1) != 0; });

TEST(Optimize, ConstantInputsFoldIntoInit) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId one = nl.add_const(true);
  const NetId y = nl.add_lut(kAnd2, {a, one});  // a & 1 == a
  auto result = optimize(nl, {&y, 1});
  EXPECT_EQ(result.stats.collapsed_aliases, 1u);
  EXPECT_EQ(result.netlist.stats().luts, 0u);
  // y now aliases the (new) input net.
  EXPECT_NE(result.net_map[y], kInvalidNet);
}

TEST(Optimize, ConstantFunctionBecomesConst) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId zero = nl.add_const(false);
  const NetId y = nl.add_lut(kAnd2, {a, zero});  // a & 0 == 0
  auto result = optimize(nl, {&y, 1});
  EXPECT_EQ(result.stats.folded_constants, 1u);
  EXPECT_EQ(result.netlist.stats().luts, 0u);
  result.netlist.settle();
  EXPECT_FALSE(result.netlist.value(result.net_map[y]));
}

TEST(Optimize, DeadLogicRemoved) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId b = nl.add_input();
  const NetId kept = nl.add_lut(kXor2, {a, b});
  nl.add_lut(kAnd2, {a, b});  // dead
  nl.add_lut(kBuf, {kept});   // dead
  auto result = optimize(nl, {&kept, 1});
  EXPECT_EQ(result.stats.dead_cells, 2u);
  EXPECT_EQ(result.netlist.stats().luts, 1u);
}

TEST(Optimize, CarrySimplifications) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId b = nl.add_input();
  const NetId zero = nl.add_const(false);
  const NetId one = nl.add_const(true);
  const NetId and_like = nl.add_carry(a, b, zero);  // a & b
  const NetId or_like = nl.add_carry(a, b, one);    // a | b
  const NetId alias = nl.add_carry(a, one, zero);   // a
  const NetId constant = nl.add_carry(one, one, zero);  // 1
  const NetId keep[] = {and_like, or_like, alias, constant};
  auto result = optimize(nl, keep);

  Netlist& opt = result.netlist;
  EXPECT_EQ(opt.stats().carries, 0u);
  EXPECT_EQ(opt.stats().luts, 2u);  // AND + OR
  for (int v = 0; v < 4; ++v) {
    opt.set_input(result.net_map[a], v & 1);
    opt.set_input(result.net_map[b], (v >> 1) & 1);
    opt.settle();
    EXPECT_EQ(opt.value(result.net_map[and_like]), (v & 1) && (v >> 1));
    EXPECT_EQ(opt.value(result.net_map[or_like]), (v & 1) || (v >> 1));
    EXPECT_EQ(opt.value(result.net_map[alias]), (v & 1) != 0);
    EXPECT_TRUE(opt.value(result.net_map[constant]));
  }
}

TEST(Optimize, FfOfMatchingConstantFolds) {
  Netlist nl;
  const NetId zero = nl.add_const(false);
  const NetId q = nl.add_ff(zero, false);
  auto result = optimize(nl, {&q, 1});
  EXPECT_EQ(result.netlist.stats().ffs, 0u);
  result.netlist.settle();
  EXPECT_FALSE(result.netlist.value(result.net_map[q]));
}

TEST(Optimize, FfOfMismatchedConstantKept) {
  Netlist nl;
  const NetId one = nl.add_const(true);
  const NetId q = nl.add_ff(one, false);  // 0 until first clock, then 1
  auto result = optimize(nl, {&q, 1});
  EXPECT_EQ(result.netlist.stats().ffs, 1u);
  Netlist& opt = result.netlist;
  opt.settle();
  EXPECT_FALSE(opt.value(result.net_map[q]));
  opt.clock();
  EXPECT_TRUE(opt.value(result.net_map[q]));
}

TEST(Optimize, RandomNetlistEquivalence) {
  // Random combinational netlists with sprinkled constants: optimized and
  // original agree on all kept outputs for random stimuli.
  util::Xoshiro256 rng{1009};
  for (int trial = 0; trial < 20; ++trial) {
    Netlist nl;
    std::vector<NetId> inputs, nets;
    for (int i = 0; i < 6; ++i) {
      inputs.push_back(nl.add_input());
      nets.push_back(inputs.back());
    }
    nets.push_back(nl.add_const(false));
    nets.push_back(nl.add_const(true));
    std::vector<NetId> outputs;
    for (int c = 0; c < 25; ++c) {
      const std::size_t fan = 1 + rng.bounded(4);
      std::vector<NetId> ins;
      for (std::size_t k = 0; k < fan; ++k)
        ins.push_back(nets[rng.bounded(nets.size())]);
      const NetId y = nl.add_lut(Lut6{rng.next()}, ins);
      nets.push_back(y);
      if (rng.chance(0.4)) outputs.push_back(y);
    }
    if (outputs.empty()) outputs.push_back(nets.back());

    auto result = optimize(nl, outputs);
    Netlist opt = result.netlist;
    EXPECT_LE(opt.stats().luts, nl.stats().luts);

    for (int vec = 0; vec < 50; ++vec) {
      const std::uint64_t stimulus = rng.next();
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const bool bit = (stimulus >> i) & 1;
        nl.set_input(inputs[i], bit);
        opt.set_input(result.net_map[inputs[i]], bit);
      }
      nl.settle();
      opt.settle();
      for (NetId out : outputs)
        EXPECT_EQ(opt.value(result.net_map[out]), nl.value(out))
            << "trial " << trial << " vec " << vec;
    }
  }
}

TEST(Optimize, SpecializedPopcounterShrinks) {
  // Tie 30 of 36 pop-counter inputs to constant zero: the optimizer must
  // shrink it dramatically while preserving the live 6-bit behavior.
  Netlist nl;
  Bus in;
  for (int i = 0; i < 6; ++i) in.push_back(nl.add_input());
  const NetId zero = nl.add_const(false);
  for (int i = 6; i < 36; ++i) in.push_back(zero);
  const Bus count = build_pop36(nl, in);

  auto result = optimize(nl, count);
  EXPECT_LT(result.netlist.stats().luts, nl.stats().luts / 2);

  Netlist opt = result.netlist;
  for (std::uint64_t v = 0; v < 64; ++v) {
    for (int i = 0; i < 6; ++i)
      opt.set_input(result.net_map[in[static_cast<std::size_t>(i)]],
                    (v >> i) & 1);
    opt.settle();
    std::uint64_t observed = 0;
    for (std::size_t b = 0; b < count.size(); ++b)
      if (opt.value(result.net_map[count[b]])) observed |= 1ULL << b;
    EXPECT_EQ(observed, static_cast<std::uint64_t>(__builtin_popcountll(v)));
  }
}

}  // namespace
}  // namespace fabp::hw
