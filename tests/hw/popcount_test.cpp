#include "fabp/hw/popcount.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "fabp/util/rng.hpp"

namespace fabp::hw {
namespace {

// Builds a pop-counter netlist over n primary inputs using `builder`, then
// checks its output against std::popcount for the given stimulus values.
template <typename Builder>
void check_popcounter(std::size_t n, Builder&& builder,
                      const std::vector<std::uint64_t>& stimuli) {
  Netlist nl;
  Bus inputs;
  for (std::size_t i = 0; i < n; ++i) inputs.push_back(nl.add_input());
  const Bus out = builder(nl, std::span<const NetId>{inputs});

  for (std::uint64_t value : stimuli) {
    drive_bus(nl, inputs, value);
    nl.settle();
    const auto expected = static_cast<std::uint64_t>(std::popcount(
        value & (n >= 64 ? ~0ULL : ((1ULL << n) - 1))));
    EXPECT_EQ(read_bus(nl, out), expected)
        << "n=" << n << " value=" << value;
  }
}

std::vector<std::uint64_t> random_stimuli(std::size_t count,
                                          std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < count; ++i) out.push_back(rng.next());
  out.push_back(0);
  out.push_back(~0ULL);
  return out;
}

TEST(Buses, DriveAndReadRoundTrip) {
  Netlist nl;
  Bus bus;
  for (int i = 0; i < 16; ++i) bus.push_back(nl.add_input());
  for (std::uint64_t v : {0ULL, 1ULL, 0xABCDULL, 0xFFFFULL}) {
    drive_bus(nl, bus, v);
    nl.settle();
    EXPECT_EQ(read_bus(nl, bus), v);
  }
}

TEST(AddBuses, ExhaustiveSmall) {
  Netlist nl;
  Bus a, b;
  for (int i = 0; i < 4; ++i) a.push_back(nl.add_input());
  for (int i = 0; i < 3; ++i) b.push_back(nl.add_input());
  const Bus sum = add_buses(nl, a, b);
  EXPECT_EQ(sum.size(), 5u);
  for (std::uint64_t av = 0; av < 16; ++av)
    for (std::uint64_t bv = 0; bv < 8; ++bv) {
      drive_bus(nl, a, av);
      drive_bus(nl, b, bv);
      nl.settle();
      EXPECT_EQ(read_bus(nl, sum), av + bv);
    }
}

TEST(AddBuses, CostIsOneWidthInLuts) {
  Netlist nl;
  Bus a, b;
  for (int i = 0; i < 8; ++i) a.push_back(nl.add_input());
  for (int i = 0; i < 8; ++i) b.push_back(nl.add_input());
  const std::size_t before = nl.stats().luts;
  add_buses(nl, a, b);
  EXPECT_EQ(nl.stats().luts - before, 8u);
}

TEST(OnesCount6, Exhaustive) {
  Netlist nl;
  Bus in;
  for (int i = 0; i < 6; ++i) in.push_back(nl.add_input());
  const Bus out = ones_count6(nl, in);
  EXPECT_EQ(out.size(), 3u);
  for (std::uint64_t v = 0; v < 64; ++v) {
    drive_bus(nl, in, v);
    nl.settle();
    EXPECT_EQ(read_bus(nl, out),
              static_cast<std::uint64_t>(std::popcount(v)));
  }
}

TEST(OnesCount6, ShortInputs) {
  for (std::size_t n : {1u, 2u, 5u}) {
    Netlist nl;
    Bus in;
    for (std::size_t i = 0; i < n; ++i) in.push_back(nl.add_input());
    const Bus out = ones_count6(nl, in);
    for (std::uint64_t v = 0; v < (1ULL << n); ++v) {
      drive_bus(nl, in, v);
      nl.settle();
      EXPECT_EQ(read_bus(nl, out),
                static_cast<std::uint64_t>(std::popcount(v)));
    }
  }
}

TEST(Pop36, ExhaustiveOverRandomAndCorners) {
  check_popcounter(36, [](Netlist& nl, std::span<const NetId> in) {
    return build_pop36(nl, in);
  }, random_stimuli(300, 101));
}

TEST(Pop36, UsesPaperStructureLutCount) {
  // Fig. 4: stage 1 = 6 groups x 3 LUTs = 18; stage 2 = 3 columns x 3 LUTs
  // = 9; stage 3 = two shifted adds (3 + 3 LUTs).  33 total.
  Netlist nl;
  Bus in;
  for (int i = 0; i < 36; ++i) in.push_back(nl.add_input());
  build_pop36(nl, in);
  EXPECT_EQ(nl.stats().luts, 33u);
}

TEST(Pop36, OutputIsSixBits) {
  Netlist nl;
  Bus in;
  for (int i = 0; i < 36; ++i) in.push_back(nl.add_input());
  const Bus out = build_pop36(nl, in);
  EXPECT_EQ(out.size(), 6u);
  drive_bus(nl, in, ~0ULL);
  nl.settle();
  EXPECT_EQ(read_bus(nl, out), 36u);
}

class PopcounterWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PopcounterWidths, HandcraftedMatchesStdPopcount) {
  const std::size_t n = GetParam();
  check_popcounter(n, [](Netlist& nl, std::span<const NetId> in) {
    return build_popcounter_handcrafted(nl, in);
  }, random_stimuli(100, 201 + n));
}

TEST_P(PopcounterWidths, TreeMatchesStdPopcount) {
  const std::size_t n = GetParam();
  check_popcounter(n, [](Netlist& nl, std::span<const NetId> in) {
    return build_popcounter_tree(nl, in);
  }, random_stimuli(100, 301 + n));
}

INSTANTIATE_TEST_SUITE_P(Widths, PopcounterWidths,
                         ::testing::Values(1, 2, 5, 6, 7, 12, 35, 36, 37, 50,
                                           63, 64));

TEST(Popcounter, WideInputsBeyondOneWord) {
  // 150 bits (the FabP-50 query length): drive two patterns via repeated
  // word stimulus on a custom harness.
  constexpr std::size_t n = 150;
  Netlist nl;
  Bus inputs;
  for (std::size_t i = 0; i < n; ++i) inputs.push_back(nl.add_input());
  const Bus out = build_popcounter_handcrafted(nl, inputs);

  util::Xoshiro256 rng{7};
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool bit = rng.chance(0.5);
      nl.set_input(inputs[i], bit);
      if (bit) ++expected;
    }
    nl.settle();
    EXPECT_EQ(read_bus(nl, out), expected);
  }
}

TEST(Popcounter, HandcraftedIsSmallerThanTree) {
  // The paper's ablation direction (§III-D): the handcrafted Pop-Counter
  // uses fewer LUTs than the tree-adder-style description.
  for (std::size_t n : {36u, 150u, 750u}) {
    EXPECT_LT(popcounter_luts_handcrafted(n), popcounter_luts_tree(n)) << n;
  }
}

TEST(Popcounter, LutCountHelpersMatchGenerators) {
  for (std::size_t n : {1u, 6u, 36u, 100u, 150u}) {
    Netlist nl;
    Bus in;
    for (std::size_t i = 0; i < n; ++i) in.push_back(nl.add_input());
    build_popcounter_handcrafted(nl, in);
    EXPECT_EQ(popcounter_luts_handcrafted(n), nl.stats().luts) << n;

    Netlist nl2;
    Bus in2;
    for (std::size_t i = 0; i < n; ++i) in2.push_back(nl2.add_input());
    build_popcounter_tree(nl2, in2);
    EXPECT_EQ(popcounter_luts_tree(n), nl2.stats().luts) << n;
  }
}

TEST(Popcounter, EmptyInput) {
  Netlist nl;
  const Bus out = build_popcounter_handcrafted(nl, {});
  nl.settle();
  EXPECT_EQ(read_bus(nl, out), 0u);
}

}  // namespace
}  // namespace fabp::hw
