#include "fabp/hw/timing.hpp"

#include <gtest/gtest.h>

#include "fabp/hw/popcount.hpp"

namespace fabp::hw {
namespace {

const Lut6 kBuf = Lut6::from_function(
    [](std::uint8_t idx) { return (idx & 1) != 0; });

TEST(Timing, EmptyNetlistHasZeroPath) {
  Netlist nl;
  nl.add_input();
  const TimingReport r = analyze_timing(nl);
  EXPECT_EQ(r.critical_path_ns, 0.0);
  EXPECT_EQ(r.logic_levels, 0u);
  EXPECT_GT(r.fmax_hz, 1e9);  // only clk-to-q + setup
}

TEST(Timing, ChainDepthAccumulates) {
  Netlist nl;
  NetId x = nl.add_input();
  for (int i = 0; i < 5; ++i) x = nl.add_lut(kBuf, {x});
  const TimingModel model;
  const TimingReport r = analyze_timing(nl, model);
  EXPECT_EQ(r.logic_levels, 5u);
  EXPECT_NEAR(r.critical_path_ns,
              5 * (model.lut_delay_ns + model.net_delay_ns), 1e-9);
}

TEST(Timing, RegisterCutsThePath) {
  Netlist nl;
  NetId x = nl.add_input();
  for (int i = 0; i < 4; ++i) x = nl.add_lut(kBuf, {x});
  x = nl.add_ff(x);
  for (int i = 0; i < 3; ++i) x = nl.add_lut(kBuf, {x});
  const TimingReport r = analyze_timing(nl);
  EXPECT_EQ(r.logic_levels, 4u);  // the pre-register half dominates
}

TEST(Timing, CarryChainIsCheap) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId b = nl.add_input();
  NetId carry = nl.add_const(false);
  for (int i = 0; i < 16; ++i) carry = nl.add_carry(a, b, carry);
  const TimingModel model;
  const TimingReport r = analyze_timing(nl, model);
  EXPECT_EQ(r.logic_levels, 0u);
  EXPECT_NEAR(r.critical_path_ns, 16 * model.carry_delay_ns, 1e-9);
}

TEST(Timing, FmaxInverseOfPath) {
  Netlist nl;
  NetId x = nl.add_input();
  for (int i = 0; i < 3; ++i) x = nl.add_lut(kBuf, {x});
  const TimingModel model;
  const TimingReport r = analyze_timing(nl, model);
  EXPECT_NEAR(r.fmax_hz * (model.clk_to_q_ns + r.critical_path_ns +
                           model.setup_ns),
              1e9, 1.0);
  EXPECT_TRUE(r.meets(r.fmax_hz * 0.99));
  EXPECT_FALSE(r.meets(r.fmax_hz * 1.01));
}

TEST(Timing, Pop36MeetsTheKernelClock) {
  // One Pop36 stage must close at 200 MHz (5 ns) on the K7-class model —
  // the paper runs the whole pipeline at the 12.8 GB/s-implied clock.
  Netlist nl;
  Bus in;
  for (int i = 0; i < 36; ++i) in.push_back(nl.add_input());
  build_pop36(nl, in);
  const TimingReport r = analyze_timing(nl);
  EXPECT_TRUE(r.meets(200e6)) << r.critical_path_ns << " ns, "
                              << r.logic_levels << " levels";
}

TEST(Timing, WidePopcounterNeedsPipelining) {
  // A full 750-bit single-cycle pop-counter misses 200 MHz — this is why
  // the design registers between stages (§III-C "multi-stage pipelined").
  Netlist nl;
  Bus in;
  for (int i = 0; i < 750; ++i) in.push_back(nl.add_input());
  build_popcounter_handcrafted(nl, in);
  const TimingReport r = analyze_timing(nl);
  EXPECT_FALSE(r.meets(200e6));
  EXPECT_GT(r.logic_levels, 6u);
}

TEST(Timing, LogicDepthsMatchReport) {
  Netlist nl;
  NetId x = nl.add_input();
  for (int i = 0; i < 4; ++i) x = nl.add_lut(kBuf, {x});
  const auto depths = logic_depths(nl);
  EXPECT_EQ(depths[x], 4u);
}

}  // namespace
}  // namespace fabp::hw
