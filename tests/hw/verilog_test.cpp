#include "fabp/hw/verilog.hpp"

#include <gtest/gtest.h>

#include "fabp/hw/popcount.hpp"

namespace fabp::hw {
namespace {

// Structural sanity: balanced parens, one module/endmodule pair.
void expect_well_formed(const VerilogModule& m) {
  EXPECT_NE(m.source.find("module " + m.name), std::string::npos);
  EXPECT_NE(m.source.find("endmodule"), std::string::npos);
  long depth = 0;
  for (char c : m.source) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(m.source.find(";;"), std::string::npos);
}

TEST(Verilog, SimpleLutModule) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId b = nl.add_input();
  const Lut6 and2 = Lut6::from_function(
      [](std::uint8_t idx) { return (idx & 3) == 3; });
  const NetId y = nl.add_lut(and2, {a, b});
  const VerilogModule m = emit_verilog(
      nl, "and_gate", {VerilogPort{"a", a}, VerilogPort{"b", b}},
      {VerilogPort{"y", y}});
  expect_well_formed(m);
  EXPECT_EQ(m.instance_count("LUT6"), 1u);
  EXPECT_NE(m.source.find(".INIT(" + and2.init_string() + ")"),
            std::string::npos);
  EXPECT_NE(m.source.find("input wire a"), std::string::npos);
  EXPECT_NE(m.source.find("output wire y"), std::string::npos);
  // No clock for pure combinational logic.
  EXPECT_EQ(m.source.find("clk"), std::string::npos);
}

TEST(Verilog, FlipFlopAddsClockAndReset) {
  Netlist nl;
  const NetId d = nl.add_input();
  const NetId q = nl.add_ff(d);
  const VerilogModule m = emit_verilog(nl, "reg1", {VerilogPort{"d", d}},
                                       {VerilogPort{"q", q}});
  expect_well_formed(m);
  EXPECT_EQ(m.instance_count("FDRE"), 1u);
  EXPECT_NE(m.source.find("input wire clk"), std::string::npos);
  EXPECT_NE(m.source.find("input wire rst"), std::string::npos);
}

TEST(Verilog, CarryEmittedAsAssign) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId b = nl.add_input();
  const NetId c = nl.add_input();
  const NetId y = nl.add_carry(a, b, c);
  const VerilogModule m = emit_verilog(
      nl, "carry1",
      {VerilogPort{"a", a}, VerilogPort{"b", b}, VerilogPort{"c", c}},
      {VerilogPort{"y", y}});
  expect_well_formed(m);
  EXPECT_NE(m.source.find("// carry"), std::string::npos);
}

TEST(Verilog, UnlistedInputsTiedLow) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId hidden = nl.add_input();
  const Lut6 or2 = Lut6::from_function(
      [](std::uint8_t idx) { return (idx & 3) != 0; });
  const NetId y = nl.add_lut(or2, {a, hidden});
  const VerilogModule m =
      emit_verilog(nl, "tied", {VerilogPort{"a", a}}, {VerilogPort{"y", y}});
  expect_well_formed(m);
  EXPECT_NE(m.source.find("= 1'b0;"), std::string::npos);
}

TEST(Verilog, Pop36ModuleHasPaperStructure) {
  const VerilogModule m = emit_pop36_module();
  expect_well_formed(m);
  EXPECT_EQ(m.name, "fabp_pop36");
  EXPECT_EQ(m.instance_count("LUT6"), 33u);  // Fig. 4 structure
  for (int i = 0; i < 36; ++i)
    EXPECT_NE(m.source.find("input wire b" + std::to_string(i)),
              std::string::npos)
        << i;
  for (int i = 0; i < 6; ++i)
    EXPECT_NE(m.source.find("output wire count" + std::to_string(i)),
              std::string::npos)
        << i;
}

TEST(Verilog, PopcounterModulesMatchLutHelpers) {
  for (std::size_t width : {36u, 72u, 150u}) {
    const VerilogModule hand = emit_popcounter_module(width, true);
    const VerilogModule tree = emit_popcounter_module(width, false);
    expect_well_formed(hand);
    expect_well_formed(tree);
    EXPECT_EQ(hand.instance_count("LUT6"),
              popcounter_luts_handcrafted(width));
    EXPECT_EQ(tree.instance_count("LUT6"), popcounter_luts_tree(width));
  }
}

TEST(Verilog, EmissionIsDeterministic) {
  EXPECT_EQ(emit_pop36_module().source, emit_pop36_module().source);
}

TEST(Verilog, RejectsInvalidPortNet) {
  Netlist nl;
  (void)nl.add_input();
  EXPECT_THROW(
      emit_verilog(nl, "bad", {VerilogPort{"x", kInvalidNet}}, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace fabp::hw
