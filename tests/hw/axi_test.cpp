#include "fabp/hw/axi.hpp"

#include <gtest/gtest.h>

namespace fabp::hw {
namespace {

TEST(AxiReadStream, DeliversAllBeats) {
  AxiReadStream axi;
  std::size_t beats = 0;
  for (int cycle = 0; cycle < 10'000; ++cycle)
    if (axi.advance()) ++beats;
  EXPECT_EQ(beats, axi.beats_delivered());
  EXPECT_EQ(axi.cycles_elapsed(), 10'000u);
  EXPECT_GT(beats, 9'000u);  // high efficiency for sequential reads
}

TEST(AxiReadStream, BurstGapPattern) {
  AxiTimingConfig cfg;
  cfg.burst_beats = 4;
  cfg.inter_burst_gap = 2;
  cfg.page_beats = 1'000'000;  // disable page effects
  cfg.page_miss_penalty = 0;
  AxiReadStream axi{cfg};
  std::string pattern;
  for (int i = 0; i < 18; ++i) pattern += axi.advance() ? 'V' : '-';
  EXPECT_EQ(pattern, "VVVV--VVVV--VVVV--");
}

TEST(AxiReadStream, PagePenaltyInjected) {
  AxiTimingConfig cfg;
  cfg.burst_beats = 1'000'000;  // disable burst gaps
  cfg.inter_burst_gap = 0;
  cfg.page_beats = 4;
  cfg.page_miss_penalty = 3;
  AxiReadStream axi{cfg};
  std::string pattern;
  for (int i = 0; i < 16; ++i) pattern += axi.advance() ? 'V' : '-';
  EXPECT_EQ(pattern, "VVVV---VVVV---VV");
}

TEST(AxiReadStream, MeasuredEfficiencyApproachesSteadyState) {
  AxiTimingConfig cfg;  // defaults
  AxiReadStream axi{cfg};
  for (int i = 0; i < 200'000; ++i) axi.advance();
  EXPECT_NEAR(axi.efficiency(),
              AxiReadStream::steady_state_efficiency(cfg), 0.002);
}

TEST(AxiReadStream, DefaultEfficiencyMatchesTableI) {
  // Table I reports 12.2 GB/s achieved of 12.8 GB/s nominal => ~0.953.
  const double eff = AxiReadStream::steady_state_efficiency({});
  EXPECT_NEAR(eff * 12.8, 12.2, 0.05);
}

TEST(AxiReadStream, ResetClearsState) {
  AxiReadStream axi;
  for (int i = 0; i < 100; ++i) axi.advance();
  axi.reset();
  EXPECT_EQ(axi.beats_delivered(), 0u);
  EXPECT_EQ(axi.cycles_elapsed(), 0u);
}

TEST(AxiReadStream, EfficiencyZeroBeforeAnyCycle) {
  AxiReadStream axi;
  EXPECT_EQ(axi.efficiency(), 0.0);
}

TEST(AxiReadStream, PerfectStreamConfig) {
  AxiTimingConfig cfg;
  cfg.inter_burst_gap = 0;
  cfg.page_miss_penalty = 0;
  AxiReadStream axi{cfg};
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(axi.advance());
  EXPECT_DOUBLE_EQ(AxiReadStream::steady_state_efficiency(cfg), 1.0);
}

}  // namespace
}  // namespace fabp::hw
