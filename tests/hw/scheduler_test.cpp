#include "fabp/hw/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fabp/hw/axi.hpp"

namespace fabp::hw {
namespace {

DeviceTaskDesc task(std::uint32_t id, std::uint32_t bytes,
                    std::uint32_t threshold = 5) {
  return DeviceTaskDesc{id, bytes, threshold};
}

TEST(PackInvocations, EmptyTaskListPacksNothing) {
  EXPECT_TRUE(pack_invocations({}, DeviceBatchConfig{}).empty());
}

TEST(PackInvocations, PreservesOrderAndAssignsOffsets) {
  DeviceBatchConfig config;
  config.invocation_tasks = 4;
  config.invocation_payload_bytes = 1000;
  const std::vector<DeviceTaskDesc> tasks{task(0, 100, 7), task(1, 200, 9),
                                          task(2, 50, 3)};
  const auto invocations = pack_invocations(tasks, config);
  ASSERT_EQ(invocations.size(), 1u);
  const DeviceInvocation& inv = invocations[0];
  ASSERT_EQ(inv.records.size(), 3u);
  EXPECT_EQ(inv.payload_bytes, 350u);
  std::uint32_t offset = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(inv.records[i].task, tasks[i].task);
    EXPECT_EQ(inv.records[i].offset_bytes, offset);
    EXPECT_EQ(inv.records[i].length_bytes, tasks[i].payload_bytes);
    EXPECT_EQ(inv.records[i].threshold, tasks[i].threshold);
    offset += tasks[i].payload_bytes;
  }
}

TEST(PackInvocations, SlotCapacityClosesInvocations) {
  DeviceBatchConfig config;
  config.invocation_tasks = 3;
  config.invocation_payload_bytes = 1'000'000;
  std::vector<DeviceTaskDesc> tasks;
  for (std::uint32_t i = 0; i < 7; ++i) tasks.push_back(task(i, 10));
  const auto invocations = pack_invocations(tasks, config);
  ASSERT_EQ(invocations.size(), 3u);
  EXPECT_EQ(invocations[0].records.size(), 3u);
  EXPECT_EQ(invocations[1].records.size(), 3u);
  EXPECT_EQ(invocations[2].records.size(), 1u);
  // Global task order is preserved across the invocation boundaries.
  std::uint32_t next = 0;
  for (const DeviceInvocation& inv : invocations)
    for (const ControlRecord& record : inv.records)
      EXPECT_EQ(record.task, next++);
}

TEST(PackInvocations, PayloadCapacityClosesInvocations) {
  DeviceBatchConfig config;
  config.invocation_tasks = 8;
  config.invocation_payload_bytes = 100;
  const std::vector<DeviceTaskDesc> tasks{task(0, 40), task(1, 40),
                                          task(2, 40)};
  const auto invocations = pack_invocations(tasks, config);
  ASSERT_EQ(invocations.size(), 2u);
  EXPECT_EQ(invocations[0].records.size(), 2u);
  EXPECT_EQ(invocations[0].payload_bytes, 80u);
  EXPECT_EQ(invocations[1].records.size(), 1u);
}

TEST(PackInvocations, OversizedTaskGetsDedicatedInvocation) {
  DeviceBatchConfig config;
  config.invocation_tasks = 8;
  config.invocation_payload_bytes = 100;
  const std::vector<DeviceTaskDesc> tasks{task(0, 10), task(1, 500),
                                          task(2, 10), task(3, 10)};
  const auto invocations = pack_invocations(tasks, config);
  ASSERT_EQ(invocations.size(), 3u);
  EXPECT_EQ(invocations[0].records.size(), 1u);
  ASSERT_EQ(invocations[1].records.size(), 1u);
  EXPECT_EQ(invocations[1].records[0].task, 1u);
  EXPECT_EQ(invocations[1].payload_bytes, 500u);
  // Nothing joins the oversized call; the tail packs together again.
  EXPECT_EQ(invocations[2].records.size(), 2u);
}

TEST(DeviceInvocation, TransferBytesCountsRecordsAndPayload) {
  DeviceBatchConfig config;
  config.control_record_bytes = 16;
  DeviceInvocation inv;
  inv.records.resize(3);
  inv.payload_bytes = 250;
  EXPECT_EQ(inv.transfer_bytes(config), 3u * 16u + 250u);
}

// ---------------------------------------------------------------------------
// Double-buffered pipeline timeline.

TEST(PipelineTimeline, EmptyRunIsAllZero) {
  const PipelineTimeline t = pipeline_timeline({}, 2);
  EXPECT_EQ(t.total_s, 0.0);
  EXPECT_EQ(t.serial_s, 0.0);
  EXPECT_EQ(t.occupancy(), 0.0);
  EXPECT_EQ(t.overlap_efficiency(), 0.0);
}

TEST(PipelineTimeline, DepthOneIsTheSerialSum) {
  const std::vector<PipelineStage> stages{{1.0, 3.0}, {2.0, 1.0}, {0.5, 4.0}};
  const PipelineTimeline t = pipeline_timeline(stages, 1);
  EXPECT_DOUBLE_EQ(t.total_s, 11.5);
  EXPECT_DOUBLE_EQ(t.serial_s, 11.5);
  EXPECT_DOUBLE_EQ(t.transfer_busy_s, 3.5);
  EXPECT_DOUBLE_EQ(t.compute_busy_s, 8.0);
  EXPECT_EQ(t.overlap_efficiency(), 0.0);
}

TEST(PipelineTimeline, DepthTwoHidesTransferBehindCompute) {
  // transfer 1, compute 2, four invocations: only the first transfer is
  // exposed, the rest run behind compute.
  const std::vector<PipelineStage> stages(4, PipelineStage{1.0, 2.0});
  const PipelineTimeline t = pipeline_timeline(stages, 2);
  EXPECT_DOUBLE_EQ(t.total_s, 1.0 + 4 * 2.0);
  EXPECT_DOUBLE_EQ(t.serial_s, 12.0);
  // hidden = 3 of hideable = min(4, 8) transfer seconds.
  EXPECT_DOUBLE_EQ(t.overlap_efficiency(), 0.75);
  EXPECT_DOUBLE_EQ(t.occupancy(), 8.0 / 9.0);
  EXPECT_GT(t.serial_s / t.total_s, 1.3);
}

TEST(PipelineTimeline, TransferWaitsForBufferRelease) {
  // Depth 2 and slow compute: the DMA engine may run at most one
  // invocation ahead — transfer k starts only after compute k-2 frees its
  // half of the ping/pong pair.
  const std::vector<PipelineStage> stages(3, PipelineStage{1.0, 10.0});
  const PipelineTimeline depth2 = pipeline_timeline(stages, 2);
  // transfers end at 1, 2, then 12 (waits for compute 0 at t=11);
  // computes run back-to-back 1..31.
  EXPECT_DOUBLE_EQ(depth2.total_s, 31.0);
  // A deeper pipe cannot beat the compute-bound floor.
  const PipelineTimeline depth3 = pipeline_timeline(stages, 3);
  EXPECT_DOUBLE_EQ(depth3.total_s, 31.0);
}

TEST(PipelineTimeline, DeeperBuffersNeverSlowTheRun) {
  const std::vector<PipelineStage> stages{
      {1.0, 2.0}, {3.0, 1.0}, {0.5, 0.5}, {2.0, 2.0}, {1.0, 4.0}};
  double previous = pipeline_timeline(stages, 1).total_s;
  for (std::size_t depth = 2; depth <= 5; ++depth) {
    const double total = pipeline_timeline(stages, depth).total_s;
    EXPECT_LE(total, previous + 1e-12) << "depth " << depth;
    previous = total;
  }
}

// ---------------------------------------------------------------------------
// Closed-form DMA pricing: cycles_for_beats must read exactly what a
// stepped AxiReadStream's cycle counter shows once that many beats landed
// (the scheduler prices invocation DMA without stepping a stream).

std::size_t stepped_cycles(const AxiTimingConfig& config, std::size_t beats) {
  AxiReadStream axi{config};
  while (axi.beats_delivered() < beats) axi.advance();
  return axi.cycles_elapsed();
}

TEST(CyclesForBeats, MatchesSteppedStreamAcrossConfigs) {
  const std::vector<AxiTimingConfig> configs{
      AxiTimingConfig{},                  // defaults (page multiple of burst)
      AxiTimingConfig{4, 2, 1'000'000, 0},  // burst gaps only
      AxiTimingConfig{1'000'000, 0, 4, 3},  // page penalty only
      AxiTimingConfig{4, 2, 6, 3},        // page NOT a multiple of the burst
      AxiTimingConfig{3, 1, 7, 5},        // ragged everything
      AxiTimingConfig{64, 0, 2048, 0},    // perfect stream
  };
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const AxiTimingConfig& config = configs[c];
    for (const std::size_t beats :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
          std::size_t{5}, std::size_t{64}, std::size_t{65}, std::size_t{100},
          std::size_t{2048}, std::size_t{2049}, std::size_t{5000}}) {
      EXPECT_EQ(AxiReadStream::cycles_for_beats(config, beats),
                stepped_cycles(config, beats))
          << "config " << c << " beats " << beats;
    }
  }
}

TEST(CyclesForBeats, ZeroBeatsCostZeroCycles) {
  EXPECT_EQ(AxiReadStream::cycles_for_beats({}, 0), 0u);
}

}  // namespace
}  // namespace fabp::hw
