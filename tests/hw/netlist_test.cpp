#include "fabp/hw/netlist.hpp"

#include <gtest/gtest.h>

namespace fabp::hw {
namespace {

const Lut6 kAnd2 = Lut6::from_function(
    [](std::uint8_t idx) { return (idx & 0b11) == 0b11; });
const Lut6 kXor2 = Lut6::from_function(
    [](std::uint8_t idx) { return ((idx ^ (idx >> 1)) & 1) != 0; });
const Lut6 kNot = Lut6::from_function(
    [](std::uint8_t idx) { return (idx & 1) == 0; });

TEST(Netlist, ConstDrivesValue) {
  Netlist nl;
  const NetId zero = nl.add_const(false);
  const NetId one = nl.add_const(true);
  nl.settle();
  EXPECT_FALSE(nl.value(zero));
  EXPECT_TRUE(nl.value(one));
}

TEST(Netlist, LutEvaluatesCombinationally) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId b = nl.add_input();
  const NetId y = nl.add_lut(kAnd2, {a, b});
  for (int av = 0; av < 2; ++av)
    for (int bv = 0; bv < 2; ++bv) {
      nl.set_input(a, av);
      nl.set_input(b, bv);
      nl.settle();
      EXPECT_EQ(nl.value(y), av && bv);
    }
}

TEST(Netlist, ChainedLutsPropagateInOnePass) {
  Netlist nl;
  const NetId a = nl.add_input();
  NetId x = a;
  for (int i = 0; i < 10; ++i) x = nl.add_lut(kNot, {x});
  nl.set_input(a, true);
  nl.settle();
  EXPECT_TRUE(nl.value(x));  // even number of inverters
}

TEST(Netlist, RejectsTooManyInputs) {
  Netlist nl;
  std::vector<NetId> inputs;
  for (int i = 0; i < 7; ++i) inputs.push_back(nl.add_input());
  EXPECT_THROW(nl.add_lut(Lut6{}, std::span<const NetId>{inputs}),
               std::invalid_argument);
}

TEST(Netlist, RejectsUndefinedNet) {
  Netlist nl;
  EXPECT_THROW(nl.add_lut(Lut6{}, {NetId{99}}), std::invalid_argument);
  EXPECT_THROW(nl.add_ff(NetId{99}), std::invalid_argument);
  EXPECT_THROW(nl.set_input(NetId{99}, true), std::invalid_argument);
}

TEST(Netlist, FfHoldsValueUntilClock) {
  Netlist nl;
  const NetId d = nl.add_input();
  const NetId q = nl.add_ff(d, false);
  nl.set_input(d, true);
  nl.settle();
  EXPECT_FALSE(nl.value(q));  // not clocked yet
  nl.clock();
  EXPECT_TRUE(nl.value(q));
  nl.set_input(d, false);
  nl.settle();
  EXPECT_TRUE(nl.value(q));  // still holds
  nl.clock();
  EXPECT_FALSE(nl.value(q));
}

TEST(Netlist, FfResetValue) {
  Netlist nl;
  const NetId d = nl.add_input(true);
  const NetId q = nl.add_ff(d, true);
  nl.settle();
  EXPECT_TRUE(nl.value(q));
  nl.clock();
  nl.set_input(d, false);
  nl.clock();
  EXPECT_FALSE(nl.value(q));
  nl.reset();
  EXPECT_TRUE(nl.value(q));
}

TEST(Netlist, TwoPhaseFfUpdate) {
  // Shift register: both FFs must capture the *old* values on one edge.
  Netlist nl;
  const NetId d = nl.add_input();
  const NetId q1 = nl.add_ff(d);
  const NetId q2 = nl.add_ff(q1);
  nl.set_input(d, true);
  nl.clock();
  EXPECT_TRUE(nl.value(q1));
  EXPECT_FALSE(nl.value(q2));  // gets the old q1
  nl.set_input(d, false);
  nl.clock();
  EXPECT_FALSE(nl.value(q1));
  EXPECT_TRUE(nl.value(q2));
}

TEST(Netlist, CarryIsMajority) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId b = nl.add_input();
  const NetId c = nl.add_input();
  const NetId y = nl.add_carry(a, b, c);
  for (int v = 0; v < 8; ++v) {
    nl.set_input(a, v & 1);
    nl.set_input(b, (v >> 1) & 1);
    nl.set_input(c, (v >> 2) & 1);
    nl.settle();
    const int ones = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(nl.value(y), ones >= 2) << v;
  }
}

TEST(Netlist, FullAdderFromPrimitives) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId b = nl.add_input();
  const NetId cin = nl.add_input();
  const Lut6 xor3 = Lut6::from_function([](std::uint8_t idx) {
    return (__builtin_popcount(idx & 7) & 1) != 0;
  });
  const NetId sum = nl.add_lut(xor3, {a, b, cin});
  const NetId cout = nl.add_carry(a, b, cin);
  for (int v = 0; v < 8; ++v) {
    nl.set_input(a, v & 1);
    nl.set_input(b, (v >> 1) & 1);
    nl.set_input(cin, (v >> 2) & 1);
    nl.settle();
    const int total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(nl.value(sum), total & 1);
    EXPECT_EQ(nl.value(cout), (total >> 1) & 1);
  }
}

TEST(Netlist, StatsCountKinds) {
  Netlist nl;
  const NetId a = nl.add_input();
  const NetId b = nl.add_input();
  nl.add_const(true);
  const NetId x = nl.add_lut(kXor2, {a, b});
  const NetId y = nl.add_lut(kAnd2, {a, x});
  nl.add_ff(y);
  nl.add_carry(a, b, x);
  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.inputs, 2u);
  EXPECT_EQ(s.luts, 2u);
  EXPECT_EQ(s.ffs, 1u);
  EXPECT_EQ(s.carries, 1u);
  EXPECT_EQ(s.cells, 7u);
}

TEST(Netlist, PipelinedAccumulatorOverCycles) {
  // score <= score XOR in  (uses the FF output as a LUT input, exercising
  // register feedback through creation order: FF exists before the LUT
  // that consumes it, and a second FF closes the loop at the same net).
  Netlist nl;
  const NetId in = nl.add_input();
  const NetId seed = nl.add_const(false);
  const NetId state = nl.add_ff(seed);  // placeholder D, reset 0
  const NetId next = nl.add_lut(kXor2, {state, in});
  // Close the loop with a second register stage reading `next`, and feed
  // it back by treating `next` as the observable (two-stage toggle).
  const NetId out = nl.add_ff(next);
  nl.set_input(in, true);
  nl.settle();  // FF D pins sample *settled* combinational values
  nl.clock();
  EXPECT_TRUE(nl.value(out));  // captured state(0) ^ 1
  nl.clock();
  EXPECT_TRUE(nl.value(out));  // state FF holds 0 (seed), so still 1
  nl.set_input(in, false);
  nl.settle();
  nl.clock();
  EXPECT_FALSE(nl.value(out));  // 0 ^ 0
}

}  // namespace
}  // namespace fabp::hw
