#include "fabp/hw/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fabp::hw {
namespace {

const Lut6 kNot = Lut6::from_function(
    [](std::uint8_t idx) { return (idx & 1) == 0; });

TEST(Vcd, HeaderAndDefinitions) {
  Netlist nl;
  const NetId a = nl.add_input();
  VcdTrace trace{"dut"};
  trace.watch(a, "a");
  trace.sample(nl);
  std::ostringstream os;
  trace.write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("$timescale 5ns $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module dut $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! a $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, RecordsChangesOnly) {
  Netlist nl;
  const NetId a = nl.add_input();
  VcdTrace trace{"dut"};
  trace.watch(a, "a");

  nl.set_input(a, false);
  nl.settle();
  trace.sample(nl);  // t0: 0
  trace.sample(nl);  // t1: unchanged
  nl.set_input(a, true);
  nl.settle();
  trace.sample(nl);  // t2: 1

  std::ostringstream os;
  trace.write(os);
  const std::string text = os.str();
  // Initial value at #0, nothing at #1, change at #2.
  EXPECT_NE(text.find("#0\n0!"), std::string::npos);
  EXPECT_NE(text.find("#2\n1!"), std::string::npos);
  EXPECT_EQ(text.find("#1\n0!"), std::string::npos);
  EXPECT_EQ(text.find("#1\n1!"), std::string::npos);
}

TEST(Vcd, VectorSignalsMsbFirst) {
  Netlist nl;
  const NetId b0 = nl.add_input();
  const NetId b1 = nl.add_input();
  VcdTrace trace{"dut"};
  const NetId bus[] = {b0, b1};  // LSB first
  trace.watch_bus(bus, "count");
  nl.set_input(b0, true);   // value 1
  nl.set_input(b1, false);
  nl.settle();
  trace.sample(nl);
  std::ostringstream os;
  trace.write(os);
  // 2-bit vector: MSB-first rendering of value 1 is "01".
  EXPECT_NE(os.str().find("b01 !"), std::string::npos);
  EXPECT_NE(os.str().find("count [1:0]"), std::string::npos);
}

TEST(Vcd, TracksSequentialLogicOverClocks) {
  Netlist nl;
  const NetId d = nl.add_input();
  const NetId q = nl.add_ff(d);
  const NetId nq = nl.add_lut(kNot, {q});
  VcdTrace trace{"dut"};
  trace.watch(q, "q");
  trace.watch(nq, "nq");

  nl.set_input(d, true);
  nl.settle();
  trace.sample(nl);
  nl.clock();
  trace.sample(nl);
  std::ostringstream os;
  trace.write(os);
  EXPECT_EQ(trace.samples(), 2u);
  // q rises at t1, nq falls at t1.
  EXPECT_NE(os.str().find("#1\n1!\n0\""), std::string::npos);
}

TEST(Vcd, WatchAfterSampleThrows) {
  Netlist nl;
  const NetId a = nl.add_input();
  VcdTrace trace{"dut"};
  trace.watch(a, "a");
  trace.sample(nl);
  EXPECT_THROW(trace.watch(a, "b"), std::logic_error);
}

TEST(Vcd, ManySignalsGetDistinctIds) {
  Netlist nl;
  VcdTrace trace{"dut"};
  std::vector<NetId> nets;
  for (int i = 0; i < 200; ++i) {
    nets.push_back(nl.add_input());
    trace.watch(nets.back(), "s" + std::to_string(i));
  }
  trace.sample(nl);
  std::ostringstream os;
  trace.write(os);
  // 200 > 94: two-character identifiers appear and parse uniquely.
  EXPECT_NE(os.str().find("$var wire 1 !\" s94 $end"), std::string::npos);
}

}  // namespace
}  // namespace fabp::hw
