#include "fabp/hw/lut.hpp"

#include <gtest/gtest.h>

namespace fabp::hw {
namespace {

TEST(Lut6, DefaultIsAllZero) {
  Lut6 lut;
  for (unsigned i = 0; i < 64; ++i) EXPECT_FALSE(lut.eval(i));
}

TEST(Lut6, FromFunctionSamplesAllEntries) {
  const Lut6 parity = Lut6::from_function([](std::uint8_t idx) {
    return __builtin_popcount(idx) % 2 == 1;
  });
  for (unsigned i = 0; i < 64; ++i)
    EXPECT_EQ(parity.eval(static_cast<std::uint8_t>(i)),
              __builtin_popcount(i) % 2 == 1);
}

TEST(Lut6, BitwiseEvalMatchesIndexEval) {
  const Lut6 lut = Lut6::from_function(
      [](std::uint8_t idx) { return (idx * 0x9e3779b9u >> 28) & 1; });
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(lut.eval(i & 1, (i >> 1) & 1, (i >> 2) & 1, (i >> 3) & 1,
                       (i >> 4) & 1, (i >> 5) & 1),
              lut.eval(static_cast<std::uint8_t>(i)));
  }
}

TEST(Lut6, IndexIsMaskedTo6Bits) {
  const Lut6 lut{1};  // only entry 0 set
  EXPECT_TRUE(lut.eval(static_cast<std::uint8_t>(64)));  // 64 & 63 == 0
  EXPECT_TRUE(lut.eval(static_cast<std::uint8_t>(128)));
}

TEST(Lut6, ConstantFunctions) {
  const Lut6 zero = Lut6::from_function([](std::uint8_t) { return false; });
  const Lut6 one = Lut6::from_function([](std::uint8_t) { return true; });
  EXPECT_EQ(zero.init(), 0u);
  EXPECT_EQ(one.init(), ~0ULL);
}

TEST(Lut6, AndOrGateTruthTables) {
  const Lut6 and2 = Lut6::from_function(
      [](std::uint8_t idx) { return (idx & 0b11) == 0b11; });
  EXPECT_FALSE(and2.eval(false, false, false, false, false, false));
  EXPECT_FALSE(and2.eval(true, false, false, false, false, false));
  EXPECT_TRUE(and2.eval(true, true, false, false, false, false));
  // Upper inputs are don't-care in this function.
  EXPECT_TRUE(and2.eval(true, true, true, true, true, true));
}

TEST(Lut6, InitStringFormat) {
  EXPECT_EQ(Lut6{0}.init_string(), "64'h0000000000000000");
  EXPECT_EQ(Lut6{0xDEADBEEFULL}.init_string(), "64'h00000000DEADBEEF");
  EXPECT_EQ(Lut6{~0ULL}.init_string(), "64'hFFFFFFFFFFFFFFFF");
}

TEST(Lut6, Equality) {
  EXPECT_EQ(Lut6{5}, Lut6{5});
  EXPECT_NE(Lut6{5}, Lut6{6});
}

}  // namespace
}  // namespace fabp::hw
