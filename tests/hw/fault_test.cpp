#include "fabp/hw/fault.hpp"

#include <gtest/gtest.h>

#include "fabp/bio/generate.hpp"
#include "fabp/bio/packed.hpp"

namespace fabp::hw {
namespace {

TEST(FaultInjector, ZeroRatesInjectNothing) {
  FaultInjector injector{FaultConfig{}};
  EXPECT_FALSE(FaultConfig{}.enabled());
  std::uint32_t bit = 0;
  EXPECT_FALSE(injector.transfer_fails());
  EXPECT_FALSE(injector.readback_corrupts(bit));
  EXPECT_TRUE(injector.data_events(1'000'000).empty());
  EXPECT_EQ(injector.storm_cycles(0), 0u);
  EXPECT_TRUE(injector.log().empty());
}

TEST(FaultInjector, ScheduleIsReplayable) {
  FaultConfig config;
  config.seed = 42;
  config.flip_rate = 1e-4;
  config.drop_rate = 1e-3;
  config.dup_rate = 1e-3;
  FaultInjector a{config, 7};
  FaultInjector b{config, 7};
  EXPECT_EQ(a.data_events(10'000), b.data_events(10'000));
  EXPECT_EQ(a.log(), b.log());
}

TEST(FaultInjector, DistinctStreamsDiverge) {
  FaultConfig config;
  config.flip_rate = 1e-3;
  FaultInjector a{config, 0};
  FaultInjector b{config, 1};
  EXPECT_NE(a.data_events(100'000), b.data_events(100'000));
}

TEST(FaultInjector, EventRateTracksConfig) {
  FaultConfig config;
  config.drop_rate = 1e-3;
  FaultInjector injector{config};
  const auto events = injector.data_events(1'000'000);
  // Binomial(1e6, 1e-3): ~1000 +- a few sigma.
  EXPECT_GT(events.size(), 800u);
  EXPECT_LT(events.size(), 1200u);
  for (const FaultEvent& e : events) {
    EXPECT_EQ(e.kind, FaultKind::DropBeat);
    EXPECT_LT(e.beat, 1'000'000u);
  }
  // Events arrive in beat order (the merged schedule).
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].beat, events[i].beat);
}

TEST(FaultyAxiStream, NullInjectorMatchesCleanStream) {
  AxiTimingConfig timing;
  AxiReadStream clean{timing};
  FaultyAxiStream faulty{timing, nullptr};
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(clean.advance(), faulty.advance());
  EXPECT_EQ(faulty.beats_delivered(), clean.beats_delivered());
  EXPECT_EQ(faulty.cycles_elapsed(), clean.cycles_elapsed());
  EXPECT_EQ(faulty.injected_stall_cycles(), 0u);
}

TEST(FaultyAxiStream, StormsInsertDeadCycles) {
  FaultConfig config;
  config.stall_rate = 0.05;
  config.stall_cycles = 16;
  FaultInjector injector{config};
  FaultyAxiStream stream{AxiTimingConfig{}, &injector};

  std::size_t beats = 0;
  std::size_t cycles = 0;
  while (beats < 2000) {
    if (stream.advance()) ++beats;
    ++cycles;
    ASSERT_LT(cycles, 1'000'000u) << "stream wedged";
  }
  EXPECT_GT(stream.injected_stall_cycles(), 0u);
  EXPECT_EQ(stream.cycles_elapsed(), cycles);
  // Every storm in the log accounts for stall_cycles dead cycles.
  std::size_t logged = 0;
  for (const FaultEvent& e : injector.log())
    if (e.kind == FaultKind::StallStorm) logged += e.cycles;
  EXPECT_GE(logged, stream.injected_stall_cycles());
  // A faulty stream is strictly slower than a clean one for equal beats.
  AxiReadStream clean{AxiTimingConfig{}};
  std::size_t clean_cycles = 0;
  for (std::size_t b = 0; b < 2000;) {
    if (clean.advance()) ++b;
    ++clean_cycles;
  }
  EXPECT_GT(cycles, clean_cycles);
}

TEST(CorruptWords, BitFlipFlipsExactlyOneBit) {
  std::vector<std::uint64_t> words(64, 0);
  const FaultEvent event{FaultKind::BitFlip, 2, 100, 0};
  const auto out =
      corrupt_words(words, std::span{&event, 1}, words.size());
  // Beat 2 starts at word 16; bit 100 lands in word 17, bit 36.
  for (std::size_t w = 0; w < words.size(); ++w) {
    if (w == 17)
      EXPECT_EQ(out[w], 1ULL << 36);
    else
      EXPECT_EQ(out[w], 0u);
  }
}

TEST(CorruptWords, DropShiftsTileTailUp) {
  std::vector<std::uint64_t> words(32);
  for (std::size_t i = 0; i < words.size(); ++i) words[i] = i;
  const FaultEvent event{FaultKind::DropBeat, 1, 0, 0};  // words 8..15
  const auto out = corrupt_words(words, std::span{&event, 1}, 32);
  for (std::size_t w = 0; w < 8; ++w) EXPECT_EQ(out[w], w);  // before: intact
  for (std::size_t w = 8; w < 24; ++w) EXPECT_EQ(out[w], w + 8);  // shifted
  for (std::size_t w = 24; w < 32; ++w) EXPECT_EQ(out[w], 0u);  // zero tail
}

TEST(CorruptWords, DupShiftsTileTailDown) {
  std::vector<std::uint64_t> words(32);
  for (std::size_t i = 0; i < words.size(); ++i) words[i] = i;
  const FaultEvent event{FaultKind::DupBeat, 1, 0, 0};
  const auto out = corrupt_words(words, std::span{&event, 1}, 32);
  for (std::size_t w = 0; w < 16; ++w) EXPECT_EQ(out[w], w);  // beat repeats
  for (std::size_t w = 16; w < 32; ++w) EXPECT_EQ(out[w], w - 8);
}

TEST(CorruptWords, DropConfinedToTile) {
  // Two 16-word tiles; a drop in tile 0 must not disturb tile 1 (the
  // stream realigns at the descriptor boundary).
  std::vector<std::uint64_t> words(32);
  for (std::size_t i = 0; i < words.size(); ++i) words[i] = 1000 + i;
  const FaultEvent event{FaultKind::DropBeat, 0, 0, 0};
  const auto out = corrupt_words(words, std::span{&event, 1}, 16);
  for (std::size_t w = 16; w < 32; ++w) EXPECT_EQ(out[w], 1000 + w);
}

TEST(CorruptWords, TimingEventsLeaveDataIntact) {
  std::vector<std::uint64_t> words(16, 0xABCD);
  const FaultEvent events[] = {
      {FaultKind::StallStorm, 0, 0, 64},
      {FaultKind::TransferFail, 0, 0, 0},
      {FaultKind::ReadbackFlip, 0, 5, 0},
  };
  const auto out = corrupt_words(words, events, 16);
  EXPECT_EQ(out, words);
}

TEST(FaultKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(FaultKind::BitFlip), "bit-flip");
  EXPECT_STREQ(to_string(FaultKind::DropBeat), "drop-beat");
  EXPECT_STREQ(to_string(FaultKind::DupBeat), "dup-beat");
  EXPECT_STREQ(to_string(FaultKind::StallStorm), "stall-storm");
  EXPECT_STREQ(to_string(FaultKind::TransferFail), "transfer-fail");
  EXPECT_STREQ(to_string(FaultKind::ReadbackFlip), "readback-flip");
}

}  // namespace
}  // namespace fabp::hw
