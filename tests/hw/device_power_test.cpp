#include <gtest/gtest.h>

#include "fabp/hw/device.hpp"
#include "fabp/hw/power.hpp"

namespace fabp::hw {
namespace {

TEST(ResourceBudget, Arithmetic) {
  const ResourceBudget a{100, 200, 300, 4};
  const ResourceBudget b{1, 2, 3, 1};
  const ResourceBudget sum = a + b;
  EXPECT_EQ(sum.luts, 101u);
  EXPECT_EQ(sum.ffs, 202u);
  EXPECT_EQ(sum.bram_bits, 303u);
  EXPECT_EQ(sum.dsps, 5u);

  const ResourceBudget scaled = b * 10;
  EXPECT_EQ(scaled.luts, 10u);
  EXPECT_EQ(scaled.dsps, 10u);
}

TEST(ResourceBudget, FitsIn) {
  const ResourceBudget cap{100, 100, 100, 100};
  EXPECT_TRUE((ResourceBudget{100, 100, 100, 100}).fits_in(cap));
  EXPECT_FALSE((ResourceBudget{101, 0, 0, 0}).fits_in(cap));
  EXPECT_FALSE((ResourceBudget{0, 0, 0, 101}).fits_in(cap));
}

TEST(Device, Kintex7MatchesTableIAvailableRow) {
  const FpgaDevice dev = kintex7();
  EXPECT_EQ(dev.capacity.luts, 326'000u);
  EXPECT_EQ(dev.capacity.ffs, 407'000u);
  EXPECT_EQ(dev.capacity.bram_bits, 16u * 1024 * 1024);
  EXPECT_EQ(dev.capacity.dsps, 840u);
  EXPECT_DOUBLE_EQ(dev.channel_bandwidth_bps, 12.8e9);
  EXPECT_EQ(dev.memory_channels, 1u);
}

TEST(Device, AxiWidthImpliesClock) {
  // 512 bits/beat at 200 MHz = 12.8 GB/s: the paper's bandwidth identity.
  const FpgaDevice dev = kintex7();
  EXPECT_EQ(dev.elements_per_beat(), 256u);
  EXPECT_DOUBLE_EQ(dev.clock_hz * 64.0, dev.channel_bandwidth_bps);
}

TEST(Device, BiggerDeviceHasMoreOfEverything) {
  const FpgaDevice k7 = kintex7();
  const FpgaDevice vu = virtex_ultrascale_plus();
  EXPECT_GT(vu.capacity.luts, k7.capacity.luts);
  EXPECT_GT(vu.capacity.dsps, k7.capacity.dsps);
  EXPECT_GT(vu.total_bandwidth_bps(), k7.total_bandwidth_bps());
}

TEST(Power, StaticFloorWithNoLogic) {
  const FpgaPowerModel model;
  const double w = model.watts(kintex7(), ResourceBudget{}, 0);
  EXPECT_NEAR(w, model.config().static_watts, 1e-9);
}

TEST(Power, GrowsWithUtilization) {
  const FpgaPowerModel model;
  const FpgaDevice dev = kintex7();
  const double low = model.watts(dev, ResourceBudget{50'000, 20'000, 0, 100});
  const double high =
      model.watts(dev, ResourceBudget{300'000, 150'000, 0, 600});
  EXPECT_GT(high, low);
}

TEST(Power, FullKintex7InPaperImpliedRange) {
  // The paper's energy numbers imply FabP draws roughly 10-13 W (see
  // perf/platform.hpp).  A near-full device should land in that range.
  const FpgaPowerModel model;
  const FpgaDevice dev = kintex7();
  const double w = model.watts(
      dev, ResourceBudget{290'000, 140'000, 3'000'000, 520}, 1);
  EXPECT_GT(w, 8.0);
  EXPECT_LT(w, 16.0);
}

TEST(Power, DramChannelsAdd) {
  const FpgaPowerModel model;
  const FpgaDevice dev = kintex7();
  const ResourceBudget used{10'000, 10'000, 0, 0};
  const double one = model.watts(dev, used, 1);
  const double four = model.watts(dev, used, 4);
  EXPECT_NEAR(four - one, 3 * model.config().dram_watts, 1e-9);
}

}  // namespace
}  // namespace fabp::hw
