#include "fabp/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace fabp::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a{1}, b{2};
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, ZeroSeedIsUsable) {
  Xoshiro256 rng{0};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng.next());
  EXPECT_GT(seen.size(), 60u);  // not stuck
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng{7};
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng{11};
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) buckets[rng.bounded(8)]++;
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 8 * 0.9);
    EXPECT_LT(count, kDraws / 8 * 1.1);
  }
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng{3};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng{5};
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Xoshiro256, ChanceMatchesProbability) {
  Xoshiro256 rng{17};
  int heads = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.chance(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.3, 0.02);
}

TEST(Xoshiro256, NormalMoments) {
  Xoshiro256 rng{23};
  double sum = 0, sum_sq = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.05);
}

TEST(Xoshiro256, PoissonMeanSmallLambda) {
  Xoshiro256 rng{31};
  double sum = 0;
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(rng.poisson(2.5));
  EXPECT_NEAR(sum / kDraws, 2.5, 0.1);
}

TEST(Xoshiro256, PoissonMeanLargeLambda) {
  Xoshiro256 rng{37};
  double sum = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / kDraws, 100.0, 1.0);
}

TEST(Xoshiro256, PoissonZeroLambda) {
  Xoshiro256 rng{37};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Xoshiro256, GeometricMean) {
  Xoshiro256 rng{41};
  double sum = 0;
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(rng.geometric(0.5));
  // Mean failures before success = (1-p)/p = 1.
  EXPECT_NEAR(sum / kDraws, 1.0, 0.05);
}

TEST(Xoshiro256, WeightedRespectsWeights) {
  Xoshiro256 rng{43};
  const std::array<double, 3> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i) counts[rng.weighted(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Xoshiro256, ShufflePreservesElements) {
  Xoshiro256 rng{47};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Xoshiro256, ForkProducesIndependentStreams) {
  Xoshiro256 parent{53};
  Xoshiro256 a = parent.fork(1);
  Xoshiro256 b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace fabp::util
