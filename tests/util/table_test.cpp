#include "fabp/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fabp::util {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t{{"name", "value"}};
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("beta").cell(std::size_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t{{"a", "b"}};
  t.row().cell("x,y").cell(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx;y,2\n");
}

TEST(Table, CellWithoutRowStartsOne) {
  Table t{{"a"}};
  t.cell("implicit");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Formatting, RatioText) {
  EXPECT_EQ(ratio_text(24.84, 1), "24.8x");
  EXPECT_EQ(ratio_text(1.0, 2), "1.00x");
}

TEST(Formatting, BandwidthText) {
  EXPECT_EQ(bandwidth_text(12.8e9), "12.8 GB/s");
  EXPECT_EQ(bandwidth_text(3.2e6), "3.2 MB/s");
  EXPECT_EQ(bandwidth_text(1.5e3), "1.5 KB/s");
  EXPECT_EQ(bandwidth_text(12.0), "12.0 B/s");
}

TEST(Formatting, TimeText) {
  EXPECT_EQ(time_text(2.5), "2.50 s");
  EXPECT_EQ(time_text(1.5e-3), "1.50 ms");
  EXPECT_EQ(time_text(2e-6), "2.00 us");
  EXPECT_EQ(time_text(3e-9), "3.00 ns");
}

TEST(Formatting, PercentText) {
  EXPECT_EQ(percent_text(0.58, 0), "58%");
  EXPECT_EQ(percent_text(0.981, 1), "98.1%");
}

TEST(Formatting, Banner) {
  std::ostringstream os;
  banner(os, "Table I");
  EXPECT_NE(os.str().find("Table I"), std::string::npos);
  EXPECT_NE(os.str().find("===="), std::string::npos);
}

}  // namespace
}  // namespace fabp::util
