#include "fabp/util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace fabp::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Median, OddAndEven) {
  const std::array<double, 5> odd{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::array<double, 4> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Median, EmptyIsZero) {
  EXPECT_EQ(median(std::span<const double>{}), 0.0);
}

TEST(Percentile, Extremes) {
  const std::array<double, 4> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Percentile, ClampsOutOfRange) {
  const std::array<double, 2> xs{1, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200), 2.0);
}

TEST(Geomean, KnownValue) {
  const std::array<double, 3> xs{1.0, 8.0, 27.0};
  EXPECT_NEAR(geomean(xs), 6.0, 1e-9);
}

TEST(Geomean, SingleValue) {
  const std::array<double, 1> xs{42.0};
  EXPECT_NEAR(geomean(xs), 42.0, 1e-9);
}

TEST(Mean, Basic) {
  const std::array<double, 4> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_EQ(mean(std::span<const double>{}), 0.0);
}

}  // namespace
}  // namespace fabp::util
