#include "fabp/util/crc32.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace fabp::util {
namespace {

TEST(Crc32, CheckValue) {
  // CRC-32/ISO-HDLC check value over the standard test vector.
  const std::string data = "123456789";
  EXPECT_EQ(crc32(data.data(), data.size()), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t head = crc32(data.data(), split);
    const std::uint32_t both = crc32(data.data() + split, data.size() - split,
                                     head);
    EXPECT_EQ(both, whole) << "split=" << split;
  }
}

TEST(Crc32, WordsMatchLittleEndianBytes) {
  const std::vector<std::uint64_t> words{0x0123456789abcdefULL,
                                         0xfedcba9876543210ULL};
  std::vector<unsigned char> bytes(words.size() * 8);
  for (std::size_t w = 0; w < words.size(); ++w)
    for (int b = 0; b < 8; ++b)
      bytes[w * 8 + static_cast<std::size_t>(b)] =
          static_cast<unsigned char>((words[w] >> (8 * b)) & 0xFF);
  EXPECT_EQ(crc32_words(words), crc32(bytes.data(), bytes.size()));
}

TEST(Crc32, SingleBitFlipChangesChecksum) {
  std::vector<std::uint64_t> words(64, 0x5555555555555555ULL);
  const std::uint32_t clean = crc32_words(words);
  for (std::size_t bit : {0u, 63u, 64u, 1000u, 4095u}) {
    auto flipped = words;
    flipped[bit / 64] ^= 1ULL << (bit % 64);
    EXPECT_NE(crc32_words(flipped), clean) << "bit=" << bit;
  }
}

TEST(Crc32, ChainingWordsIsIncremental) {
  const std::vector<std::uint64_t> words{1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t whole = crc32_words(words);
  const std::uint32_t head = crc32_words(std::span{words}.subspan(0, 3));
  EXPECT_EQ(crc32_words(std::span{words}.subspan(3), head), whole);
}

}  // namespace
}  // namespace fabp::util
