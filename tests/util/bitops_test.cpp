#include "fabp/util/bitops.hpp"

#include <gtest/gtest.h>

#include "fabp/util/rng.hpp"

namespace fabp::util {
namespace {

TEST(BitOps, BitsExtraction) {
  EXPECT_EQ(bits(0b110110, 1, 3), 0b011u);
  EXPECT_EQ(bits(0xffffffffffffffffULL, 0, 64), 0xffffffffffffffffULL);
  EXPECT_EQ(bits(0xff, 4, 4), 0xfu);
  EXPECT_EQ(bits(0xff, 8, 4), 0u);
}

TEST(BitOps, SingleBit) {
  EXPECT_TRUE(bit(0b100, 2));
  EXPECT_FALSE(bit(0b100, 1));
  EXPECT_FALSE(bit(0, 63));
  EXPECT_TRUE(bit(1ULL << 63, 63));
}

TEST(BitOps, WithBit) {
  EXPECT_EQ(with_bit(0, 3, true), 0b1000u);
  EXPECT_EQ(with_bit(0b1111, 1, false), 0b1101u);
  EXPECT_EQ(with_bit(0b1000, 3, true), 0b1000u);
}

TEST(BitOps, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(256, 64), 4u);
}

TEST(BitVector, StartsEmpty) {
  BitVector bv;
  EXPECT_TRUE(bv.empty());
  EXPECT_EQ(bv.count(), 0u);
}

TEST(BitVector, ConstructedWithValue) {
  BitVector zeros{100, false};
  EXPECT_EQ(zeros.size(), 100u);
  EXPECT_EQ(zeros.count(), 0u);

  BitVector ones{100, true};
  EXPECT_EQ(ones.count(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_TRUE(ones.get(i));
}

TEST(BitVector, SetAndGet) {
  BitVector bv{130};
  bv.set(0, true);
  bv.set(64, true);
  bv.set(129, true);
  EXPECT_TRUE(bv.get(0));
  EXPECT_TRUE(bv.get(64));
  EXPECT_TRUE(bv.get(129));
  EXPECT_FALSE(bv.get(1));
  EXPECT_EQ(bv.count(), 3u);
  bv.set(64, false);
  EXPECT_EQ(bv.count(), 2u);
}

TEST(BitVector, PushBackGrows) {
  BitVector bv;
  for (int i = 0; i < 200; ++i) bv.push_back(i % 3 == 0);
  EXPECT_EQ(bv.size(), 200u);
  std::size_t expected = 0;
  for (int i = 0; i < 200; ++i)
    if (i % 3 == 0) ++expected;
  EXPECT_EQ(bv.count(), expected);
}

TEST(BitVector, CountRangeMatchesBruteForce) {
  Xoshiro256 rng{99};
  BitVector bv{300};
  for (std::size_t i = 0; i < 300; ++i) bv.set(i, rng.chance(0.4));

  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t a = rng.bounded(301);
    const std::size_t b = rng.bounded(301);
    const std::size_t lo = std::min(a, b), hi = std::max(a, b);
    std::size_t expected = 0;
    for (std::size_t i = lo; i < hi; ++i)
      if (bv.get(i)) ++expected;
    EXPECT_EQ(bv.count_range(lo, hi), expected) << lo << ".." << hi;
  }
}

TEST(BitVector, CountRangeClampsEnd) {
  BitVector bv{10, true};
  EXPECT_EQ(bv.count_range(5, 100), 5u);
  EXPECT_EQ(bv.count_range(20, 30), 0u);
  EXPECT_EQ(bv.count_range(7, 7), 0u);
  EXPECT_EQ(bv.count_range(8, 3), 0u);
}

TEST(BitVector, EqualityComparesContent) {
  BitVector a{70}, b{70};
  a.set(69, true);
  EXPECT_NE(a, b);
  b.set(69, true);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fabp::util
