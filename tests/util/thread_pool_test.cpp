#include "fabp/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fabp::util {
namespace {

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool{2};
  std::atomic<int> value{0};
  pool.submit([&] { value = 42; }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool{2};
  auto future = pool.submit([] { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> touched(500);
  pool.parallel_for(0, 500, [&](std::size_t i) { touched[i]++; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool{2};
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelChunksPartitionExactly) {
  ThreadPool pool{3};
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(10, 100, [&](std::size_t lo, std::size_t hi) {
    const std::lock_guard lock{m};
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 100u);
  for (std::size_t i = 1; i < chunks.size(); ++i)
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);  // no gaps/overlap
}

TEST(ThreadPool, ParallelForSumMatchesSerial) {
  ThreadPool pool{4};
  std::vector<long> values(1000);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long> sum{0};
  pool.parallel_for(0, values.size(),
                    [&](std::size_t i) { sum += values[i]; });
  EXPECT_EQ(sum.load(), 1000L * 1001 / 2);
}

TEST(ThreadPool, MoreChunksThanElements) {
  ThreadPool pool{8};
  std::atomic<int> count{0};
  pool.parallel_for(0, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, GranuleRoundsChunksToWholeMultiples) {
  ThreadPool pool{3};
  std::mutex m;
  std::vector<std::array<std::size_t, 3>> seen;
  pool.parallel_indexed_chunks(
      0, 1000,
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        const std::lock_guard lock{m};
        seen.push_back({c, lo, hi});
      },
      128);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), pool.chunk_count(1000, 128));
  EXPECT_EQ(seen.front()[1], 0u);
  EXPECT_EQ(seen.back()[2], 1000u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i][0], i);  // chunk indices are dense and ordered
    if (i > 0) {
      EXPECT_EQ(seen[i][1], seen[i - 1][2]);
    }
    if (i + 1 < seen.size()) {  // every chunk but the last: whole granules
      EXPECT_EQ((seen[i][2] - seen[i][1]) % 128, 0u);
    }
  }
}

TEST(ThreadPool, ChunkCountIsExactAndGranuleAware) {
  ThreadPool pool{4};
  // Exhaustively confirm chunk_count equals the chunks actually produced.
  for (std::size_t total : {0u, 1u, 3u, 64u, 65u, 255u, 256u, 1000u}) {
    for (std::size_t granule : {1u, 64u, 300u}) {
      std::atomic<std::size_t> produced{0};
      std::atomic<std::size_t> covered{0};
      pool.parallel_indexed_chunks(
          0, total,
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            ++produced;
            covered += hi - lo;
          },
          granule);
      EXPECT_EQ(produced.load(), pool.chunk_count(total, granule))
          << "total=" << total << " granule=" << granule;
      EXPECT_EQ(covered.load(), total);
    }
  }
  // A range under one granule is a single chunk regardless of width.
  EXPECT_EQ(pool.chunk_count(63, 64), 1u);
  EXPECT_EQ(pool.chunk_count(64, 64), 1u);
  EXPECT_EQ(pool.chunk_count(65, 64), 2u);
}

TEST(ThreadPool, NoWorkerStrandedOnUnevenGranuleCounts) {
  // Regression: the old uniform rounded-up step collapsed grains=N+1 over
  // N workers to about N/2 double-size chunks (9 grains on 8 workers gave
  // 5 chunks), stranding workers on multi-tile scans.  The balanced split
  // must produce exactly min(grains, N) chunks — every worker of a pool
  // narrower than the grain count observes at least one chunk.
  for (std::size_t threads : {2u, 3u, 4u, 8u}) {
    ThreadPool pool{threads};
    for (std::size_t grains : {threads - 1, threads, threads + 1,
                               2 * threads - 1, 2 * threads + 1}) {
      const std::size_t granule = 64;
      const std::size_t total = grains * granule;
      std::atomic<std::size_t> produced{0};
      std::atomic<std::size_t> covered{0};
      pool.parallel_indexed_chunks(
          0, total,
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            ++produced;
            covered += hi - lo;
          },
          granule);
      EXPECT_EQ(produced.load(), std::min(grains, threads))
          << "threads=" << threads << " grains=" << grains;
      EXPECT_EQ(produced.load(), pool.chunk_count(total, granule));
      EXPECT_EQ(covered.load(), total);
    }
  }
}

TEST(ThreadPool, BalancedChunksDifferByAtMostOneGranule) {
  ThreadPool pool{4};
  const std::size_t granule = 100;
  for (std::size_t total : {700u, 1000u, 1100u, 1501u}) {
    std::mutex m;
    std::vector<std::size_t> sizes;
    pool.parallel_indexed_chunks(
        0, total,
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          const std::lock_guard lock{m};
          sizes.push_back(hi - lo);
        },
        granule);
    const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_LE(*hi - *lo, granule) << "total=" << total;
  }
}

TEST(ThreadPool, MaxChunksOverridesPoolWidth) {
  ThreadPool pool{2};
  const std::size_t granule = 10;
  // Finer than the pool (the work-stealing partition): 8 chunks drain
  // through 2 workers.
  std::atomic<std::size_t> produced{0};
  pool.parallel_indexed_chunks(
      0, 100, [&](std::size_t, std::size_t, std::size_t) { ++produced; },
      granule, 8);
  EXPECT_EQ(produced.load(), 8u);
  EXPECT_EQ(pool.chunk_count(100, granule, 8), 8u);
  // Coarser than the pool, and never more chunks than granules.
  EXPECT_EQ(pool.chunk_count(100, granule, 1), 1u);
  EXPECT_EQ(pool.chunk_count(100, granule, 64), 10u);
  // 0 keeps the pool-width default.
  EXPECT_EQ(pool.chunk_count(100, granule, 0), 2u);
}

TEST(ThreadPool, ParallelChunksSurfaceTaskExceptions) {
  // A throwing chunk must reach the caller as an ordinary exception — not
  // std::terminate on a worker, and not a rethrow while sibling chunks
  // still reference the callable on the caller's stack.
  ThreadPool pool{4};
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(0, 400, [&](std::size_t i) {
      ++ran;
      if (i == 123) throw std::runtime_error{"tile scan failed"};
    });
    FAIL() << "exception must propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "tile scan failed");
  }
  // Sibling chunks were drained before the rethrow — only the throwing
  // chunk stops early, so at most one chunk's tail can be missing.
  EXPECT_GE(ran.load(), 300);
}

TEST(ThreadPool, FirstExceptionWinsAndPoolStaysUsable) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_chunks(0, 100,
                                    [](std::size_t, std::size_t) {
                                      throw std::logic_error{"each chunk"};
                                    }),
               std::logic_error);
  // The pool survives and runs clean work afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 64, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, InlineChunkAlsoPropagates) {
  // The single-chunk fast path runs on the caller; exceptions flow as-is.
  ThreadPool pool{1};
  EXPECT_THROW(pool.parallel_indexed_chunks(
                   0, 10,
                   [](std::size_t, std::size_t, std::size_t) {
                     throw std::invalid_argument{"inline"};
                   }),
               std::invalid_argument);
}

TEST(ThreadPool, SingleChunkRunsInline) {
  // A lone chunk must execute on the calling thread (no queue round-trip)
  // so 1-wide pools cost exactly a serial call.
  ThreadPool pool{1};
  const auto caller = std::this_thread::get_id();
  std::thread::id ran;
  pool.parallel_indexed_chunks(0, 100, [&](std::size_t, std::size_t,
                                           std::size_t) {
    ran = std::this_thread::get_id();
  });
  EXPECT_EQ(ran, caller);
}

}  // namespace
}  // namespace fabp::util
