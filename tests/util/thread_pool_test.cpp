#include "fabp/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fabp::util {
namespace {

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool{2};
  std::atomic<int> value{0};
  pool.submit([&] { value = 42; }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool{2};
  auto future = pool.submit([] { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> touched(500);
  pool.parallel_for(0, 500, [&](std::size_t i) { touched[i]++; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool{2};
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelChunksPartitionExactly) {
  ThreadPool pool{3};
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(10, 100, [&](std::size_t lo, std::size_t hi) {
    const std::lock_guard lock{m};
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 100u);
  for (std::size_t i = 1; i < chunks.size(); ++i)
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);  // no gaps/overlap
}

TEST(ThreadPool, ParallelForSumMatchesSerial) {
  ThreadPool pool{4};
  std::vector<long> values(1000);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long> sum{0};
  pool.parallel_for(0, values.size(),
                    [&](std::size_t i) { sum += values[i]; });
  EXPECT_EQ(sum.load(), 1000L * 1001 / 2);
}

TEST(ThreadPool, MoreChunksThanElements) {
  ThreadPool pool{8};
  std::atomic<int> count{0};
  pool.parallel_for(0, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace fabp::util
