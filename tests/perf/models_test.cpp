#include "fabp/perf/models.hpp"

#include <gtest/gtest.h>

#include "fabp/perf/figure6.hpp"

namespace fabp::perf {
namespace {

TEST(Platforms, SpecsAreSane) {
  const CpuSpec cpu = i7_8700k();
  EXPECT_EQ(cpu.threads, 12u);
  EXPECT_GT(cpu.watts_all_threads, cpu.watts_single_thread);
  EXPECT_GT(cpu.speedup_12t(), 1.0);
  EXPECT_LT(cpu.speedup_12t(), 12.0);

  const GpuSpec gpu = gtx_1080ti();
  EXPECT_EQ(gpu.cuda_cores, 3584u);
  EXPECT_GT(gpu.comparisons_per_second(), 1e12);
  EXPECT_LT(gpu.comparisons_per_second(), 1e14);
}

TEST(CpuModel, MeasurementProducesRate) {
  util::Xoshiro256 rng{211};
  const bio::ProteinSequence query = bio::random_protein(30, rng);
  const bio::NucleotideSequence sample = bio::random_dna(200'000, rng);
  const CpuMeasurement m = measure_tblastn(query, sample);
  EXPECT_EQ(m.sample_bases, 200'000u);
  EXPECT_GT(m.host_seconds, 0.0);
  EXPECT_GT(m.bases_per_second, 0.0);
  EXPECT_GT(m.stats.word_probes, 0u);
}

TEST(CpuModel, ExtrapolationIsLinearInDbSize) {
  CpuMeasurement m;
  m.bases_per_second = 1e6;
  const CpuSpec cpu = i7_8700k();
  const PlatformResult small = cpu_result(m, cpu, 1'000'000, false);
  const PlatformResult large = cpu_result(m, cpu, 10'000'000, false);
  EXPECT_NEAR(large.seconds / small.seconds, 10.0, 1e-9);
}

TEST(CpuModel, MultithreadScalesByEfficiency) {
  CpuMeasurement m;
  m.bases_per_second = 1e6;
  const CpuSpec cpu = i7_8700k();
  const PlatformResult one = cpu_result(m, cpu, 1'000'000, false);
  const PlatformResult twelve = cpu_result(m, cpu, 1'000'000, true);
  EXPECT_NEAR(one.seconds / twelve.seconds, cpu.speedup_12t(), 1e-9);
  EXPECT_GT(twelve.watts, one.watts);
}

TEST(GpuModel, ScalesWithWorkload) {
  const GpuSpec gpu = gtx_1080ti();
  const PlatformResult a = gpu_result(gpu, 1'000'000'000, 150);
  const PlatformResult b = gpu_result(gpu, 1'000'000'000, 300);
  EXPECT_GT(b.seconds, a.seconds * 1.8);
  EXPECT_LT(b.seconds, a.seconds * 2.2);
}

TEST(GpuModel, TinyWorkloadDominatedByLaunch) {
  const GpuSpec gpu = gtx_1080ti();
  const PlatformResult r = gpu_result(gpu, 10'000, 150);
  EXPECT_NEAR(r.seconds, 50e-6, 10e-6);
}

TEST(GpuModel, EnergyIsPowerTimesTime) {
  const GpuSpec gpu = gtx_1080ti();
  const PlatformResult r = gpu_result(gpu, 1'000'000'000, 450);
  EXPECT_NEAR(r.joules, r.seconds * gpu.watts, 1e-9);
}

TEST(FabpModel, MatchesSessionEstimate) {
  util::Xoshiro256 rng{223};
  core::Session session;
  const bio::ProteinSequence query = bio::random_protein(50, rng);
  const PlatformResult r = fabp_result(session, query, 120, 1 << 26);
  const core::HostRunReport direct = session.estimate(query, 120, 1 << 26);
  EXPECT_DOUBLE_EQ(r.seconds, direct.total_s);
  EXPECT_DOUBLE_EQ(r.joules, direct.joules);
}

TEST(Figure6, SmallSweepHasPaperShape) {
  // A reduced sweep (tiny sample, small nominal DB) must still show the
  // paper's ordering: FabP and GPU comparable, both far ahead of CPU-12T,
  // and FabP far ahead on energy.
  Figure6Config cfg;
  cfg.query_lengths = {50, 150, 250};
  cfg.cpu_sample_bases = 60'000;       // keep the measured stage quick
  cfg.db_bases = std::size_t{1} << 26; // 64 Mbase nominal
  const auto rows = run_figure6(cfg);
  ASSERT_EQ(rows.size(), 3u);

  for (const Figure6Row& row : rows) {
    EXPECT_GT(row.speedup_fabp, row.speedup_cpu12) << row.query_length;
    EXPECT_GT(row.energy_fabp, row.energy_gpu) << row.query_length;
    EXPECT_GT(row.cpu1.seconds, row.cpu12.seconds);
  }

  const Figure6Summary s = summarize(rows);
  EXPECT_GT(s.fabp_over_cpu12_speedup, 2.0);
  EXPECT_GT(s.fabp_over_gpu_energy, 5.0);
  // FabP and the GPU are the same order of magnitude (paper: 8.1% apart).
  EXPECT_GT(s.fabp_over_gpu_speedup, 0.3);
  EXPECT_LT(s.fabp_over_gpu_speedup, 5.0);
}

TEST(Figure6, ExecutionTimeGrowsWithQueryLength) {
  Figure6Config cfg;
  cfg.query_lengths = {50, 250};
  cfg.cpu_sample_bases = 60'000;
  cfg.db_bases = std::size_t{1} << 26;
  const auto rows = run_figure6(cfg);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_GT(rows[1].gpu.seconds, rows[0].gpu.seconds);
  EXPECT_GT(rows[1].fabp.seconds, rows[0].fabp.seconds);
}

}  // namespace
}  // namespace fabp::perf
