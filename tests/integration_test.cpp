// End-to-end integration tests across the full stack: synthetic database
// -> host session (FabP cycle simulator) -> hits, cross-checked against the
// golden model, the GPU functional stand-in, TBLASTN and Smith-Waterman.

#include <gtest/gtest.h>

#include "fabp/fabp.hpp"

namespace fabp {
namespace {

using bio::NucleotideSequence;
using bio::ProteinSequence;

struct Workload {
  bio::SyntheticDatabase db;
  ProteinSequence query;
  std::size_t gene_pos = 0;
};

Workload make_workload(std::size_t db_bases, std::size_t gene_len,
                       std::size_t query_len, std::uint64_t seed) {
  bio::DatabaseSpec spec;
  spec.total_bases = db_bases;
  spec.gene_count = 4;
  spec.gene_length = gene_len;
  spec.seed = seed;
  Workload w{bio::SyntheticDatabase::build(spec), {}, 0};
  const auto& gene = w.db.genes[1];
  w.query = gene.protein.subsequence(3, query_len);
  w.gene_pos = gene.dna_position + 9;  // 3 residues * 3 bases
  return w;
}

TEST(Integration, FabpSessionAgreesWithGoldenModel) {
  const Workload w = make_workload(40'000, 60, 30, 301);
  const auto threshold = static_cast<std::uint32_t>(w.query.size() * 3 * 8 / 10);

  core::Session session;
  session.upload_reference(w.db.dna);
  const core::HostRunReport report = session.align(w.query, threshold);

  const auto golden =
      core::golden_hits(core::back_translate(w.query), w.db.dna, threshold);
  EXPECT_EQ(report.hits, golden);
}

TEST(Integration, FabpFindsThePlantedGeneAtItsPosition) {
  const Workload w = make_workload(40'000, 60, 30, 303);
  // The planted coding sequence may contain AGY serines (biological codon
  // choice); allow up to 2 lost elements per serine.
  std::size_t sers = 0;
  for (bio::AminoAcid aa : w.query)
    if (aa == bio::AminoAcid::Ser) ++sers;
  const auto threshold =
      static_cast<std::uint32_t>(w.query.size() * 3 - 2 * sers);

  core::Session session;
  session.upload_reference(w.db.dna);
  const core::HostRunReport report = session.align(w.query, threshold);
  bool found = false;
  for (const core::Hit& h : report.hits)
    if (h.position == w.gene_pos) found = true;
  EXPECT_TRUE(found);
}

TEST(Integration, GpuFunctionalStandInFindsSamePosition) {
  // The multithreaded behavioral scan (the CUDA kernel's functional model)
  // must agree with the accelerator on the same workload.
  const Workload w = make_workload(30'000, 50, 25, 307);
  const auto threshold = static_cast<std::uint32_t>(w.query.size() * 3 / 2);

  core::Session session;
  session.upload_reference(w.db.dna);
  const auto fabp_hits = session.align(w.query, threshold).hits;

  util::ThreadPool pool{4};
  const auto gpu_hits = core::golden_hits_parallel(
      core::back_translate(w.query), w.db.dna, threshold, pool);
  EXPECT_EQ(fabp_hits, gpu_hits);
}

TEST(Integration, TblastnAndFabpAgreeOnThePlantedRegion) {
  const Workload w = make_workload(60'000, 80, 40, 311);

  // FabP.
  std::size_t sers = 0;
  for (bio::AminoAcid aa : w.query)
    if (aa == bio::AminoAcid::Ser) ++sers;
  const auto threshold =
      static_cast<std::uint32_t>(w.query.size() * 3 - 2 * sers);
  core::Session session;
  session.upload_reference(w.db.dna);
  const auto fabp_hits = session.align(w.query, threshold).hits;

  // TBLASTN.
  blast::TblastnConfig cfg;
  cfg.evalue_cutoff = 10.0;
  blast::Tblastn engine{w.query, cfg};
  const auto blast_result = engine.search(w.db.dna);

  // Both find the planted region.
  bool fabp_found = false;
  for (const core::Hit& h : fabp_hits)
    if (h.position == w.gene_pos) fabp_found = true;
  bool blast_found = false;
  for (const auto& h : blast_result.hits)
    if (h.dna_position >= w.gene_pos - 3 &&
        h.dna_position <= w.gene_pos + 3 * w.query.size())
      blast_found = true;
  EXPECT_TRUE(fabp_found);
  EXPECT_TRUE(blast_found);
}

TEST(Integration, SmithWatermanConfirmsFabpHits) {
  // For each FabP hit, nucleotide-level Smith-Waterman on the local window
  // against a representative back-translation scores at least as high as
  // the (match=+1, mismatch=0-equivalent) hit score implies.
  const Workload w = make_workload(30'000, 50, 20, 313);
  const auto elements = core::back_translate(w.query);
  const auto threshold = static_cast<std::uint32_t>(elements.size() * 9 / 10);

  core::Session session;
  session.upload_reference(w.db.dna);
  const auto hits = session.align(w.query, threshold).hits;
  ASSERT_FALSE(hits.empty());

  util::Xoshiro256 rng{317};
  const NucleotideSequence representative =
      core::random_template_coding(w.query, rng);
  for (const core::Hit& hit : hits) {
    const NucleotideSequence window =
        w.db.dna.subsequence(hit.position, elements.size());
    const int sw =
        align::smith_waterman_score(representative, window,
                                    align::NucleotideScoring{1, 0});
    // Degenerate matching can only accept more than one representative,
    // so SW(match=1, mismatch=0) of the representative is a lower bound
    // witness that the region is highly similar.
    EXPECT_GE(static_cast<int>(hit.score) + 6, sw) << hit.position;
  }
}

TEST(Integration, FastaRoundTripDrivesPipeline) {
  // Write the workload to FASTA, read it back, and search — exercising
  // the I/O path a downstream user would take.
  const Workload w = make_workload(20'000, 40, 20, 331);
  const std::string dir = testing::TempDir();
  bio::write_fasta_file(dir + "/ref.fa",
                        {bio::FastaRecord{"chr1", "synthetic",
                                          w.db.dna.to_string()}});
  bio::write_fasta_file(dir + "/query.fa",
                        {bio::FastaRecord{"q1", "", w.query.to_string()}});

  const auto refs = bio::read_fasta_file(dir + "/ref.fa");
  const auto queries = bio::read_fasta_file(dir + "/query.fa");
  const auto ref =
      NucleotideSequence::parse(bio::SeqKind::Dna, refs[0].sequence);
  const auto query = ProteinSequence::parse(queries[0].sequence);
  EXPECT_EQ(ref, w.db.dna);
  EXPECT_EQ(query, w.query);

  core::Session session;
  session.upload_reference(ref);
  const auto threshold = static_cast<std::uint32_t>(query.size() * 3 / 2);
  EXPECT_FALSE(session.align(query, threshold).hits.empty());
}

TEST(Integration, MutatedQueriesDegradeGracefully) {
  // Protein-level divergence lowers FabP scores roughly linearly: with
  // substitution rate p, the expected planted-hit score stays well above
  // the random background.
  const Workload w = make_workload(30'000, 60, 40, 337);
  util::Xoshiro256 rng{347};
  const auto diverged = bio::mutate_protein(w.query, 0.10, rng);

  const auto query = core::back_translate(diverged);
  const auto score =
      core::golden_score_at(query, w.db.dna, w.gene_pos);
  // 10% residue divergence costs at most ~3 elements per mutated residue.
  EXPECT_GT(score, query.size() * 6 / 10);
}

}  // namespace
}  // namespace fabp
