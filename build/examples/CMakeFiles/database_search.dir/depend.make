# Empty dependencies file for database_search.
# This may be replaced when dependencies are built.
