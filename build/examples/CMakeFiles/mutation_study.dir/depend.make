# Empty dependencies file for mutation_study.
# This may be replaced when dependencies are built.
