file(REMOVE_RECURSE
  "CMakeFiles/mutation_study.dir/mutation_study.cpp.o"
  "CMakeFiles/mutation_study.dir/mutation_study.cpp.o.d"
  "mutation_study"
  "mutation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
