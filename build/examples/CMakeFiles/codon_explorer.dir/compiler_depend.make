# Empty compiler generated dependencies file for codon_explorer.
# This may be replaced when dependencies are built.
