file(REMOVE_RECURSE
  "CMakeFiles/codon_explorer.dir/codon_explorer.cpp.o"
  "CMakeFiles/codon_explorer.dir/codon_explorer.cpp.o.d"
  "codon_explorer"
  "codon_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codon_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
