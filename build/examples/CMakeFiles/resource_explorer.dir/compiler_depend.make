# Empty compiler generated dependencies file for resource_explorer.
# This may be replaced when dependencies are built.
