file(REMOVE_RECURSE
  "CMakeFiles/resource_explorer.dir/resource_explorer.cpp.o"
  "CMakeFiles/resource_explorer.dir/resource_explorer.cpp.o.d"
  "resource_explorer"
  "resource_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
