file(REMOVE_RECURSE
  "CMakeFiles/fabp_cli.dir/fabp_cli.cpp.o"
  "CMakeFiles/fabp_cli.dir/fabp_cli.cpp.o.d"
  "fabp"
  "fabp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
