# Empty dependencies file for fabp_cli.
# This may be replaced when dependencies are built.
