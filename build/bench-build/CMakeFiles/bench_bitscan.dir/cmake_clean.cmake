file(REMOVE_RECURSE
  "../bench/bench_bitscan"
  "../bench/bench_bitscan.pdb"
  "CMakeFiles/bench_bitscan.dir/bench_bitscan.cpp.o"
  "CMakeFiles/bench_bitscan.dir/bench_bitscan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bitscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
