
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_bitscan.cpp" "bench-build/CMakeFiles/bench_bitscan.dir/bench_bitscan.cpp.o" "gcc" "bench-build/CMakeFiles/bench_bitscan.dir/bench_bitscan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/fabp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/fabp/CMakeFiles/fabp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blast/CMakeFiles/fabp_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/fabp_align.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/fabp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/fabp_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fabp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
