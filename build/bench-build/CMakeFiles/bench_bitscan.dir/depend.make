# Empty dependencies file for bench_bitscan.
# This may be replaced when dependencies are built.
