file(REMOVE_RECURSE
  "../bench/bench_ablation_channels"
  "../bench/bench_ablation_channels.pdb"
  "CMakeFiles/bench_ablation_channels.dir/bench_ablation_channels.cpp.o"
  "CMakeFiles/bench_ablation_channels.dir/bench_ablation_channels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
