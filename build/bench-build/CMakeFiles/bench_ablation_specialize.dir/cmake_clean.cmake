file(REMOVE_RECURSE
  "../bench/bench_ablation_specialize"
  "../bench/bench_ablation_specialize.pdb"
  "CMakeFiles/bench_ablation_specialize.dir/bench_ablation_specialize.cpp.o"
  "CMakeFiles/bench_ablation_specialize.dir/bench_ablation_specialize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_specialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
