# Empty compiler generated dependencies file for bench_ablation_specialize.
# This may be replaced when dependencies are built.
