# Empty dependencies file for bench_indel_accuracy.
# This may be replaced when dependencies are built.
