file(REMOVE_RECURSE
  "../bench/bench_indel_accuracy"
  "../bench/bench_indel_accuracy.pdb"
  "CMakeFiles/bench_indel_accuracy.dir/bench_indel_accuracy.cpp.o"
  "CMakeFiles/bench_indel_accuracy.dir/bench_indel_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indel_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
