# Empty dependencies file for bench_ablation_popcounter.
# This may be replaced when dependencies are built.
