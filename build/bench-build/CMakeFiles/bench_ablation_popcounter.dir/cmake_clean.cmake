file(REMOVE_RECURSE
  "../bench/bench_ablation_popcounter"
  "../bench/bench_ablation_popcounter.pdb"
  "CMakeFiles/bench_ablation_popcounter.dir/bench_ablation_popcounter.cpp.o"
  "CMakeFiles/bench_ablation_popcounter.dir/bench_ablation_popcounter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_popcounter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
