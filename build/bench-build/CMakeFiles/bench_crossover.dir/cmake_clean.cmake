file(REMOVE_RECURSE
  "../bench/bench_crossover"
  "../bench/bench_crossover.pdb"
  "CMakeFiles/bench_crossover.dir/bench_crossover.cpp.o"
  "CMakeFiles/bench_crossover.dir/bench_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
