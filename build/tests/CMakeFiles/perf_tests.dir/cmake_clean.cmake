file(REMOVE_RECURSE
  "CMakeFiles/perf_tests.dir/perf/models_test.cpp.o"
  "CMakeFiles/perf_tests.dir/perf/models_test.cpp.o.d"
  "perf_tests"
  "perf_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
