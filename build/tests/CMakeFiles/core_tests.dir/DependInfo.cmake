
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/accelerator_grid_test.cpp" "tests/CMakeFiles/core_tests.dir/core/accelerator_grid_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/accelerator_grid_test.cpp.o.d"
  "/root/repo/tests/core/accelerator_test.cpp" "tests/CMakeFiles/core_tests.dir/core/accelerator_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/accelerator_test.cpp.o.d"
  "/root/repo/tests/core/array_test.cpp" "tests/CMakeFiles/core_tests.dir/core/array_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/array_test.cpp.o.d"
  "/root/repo/tests/core/backtranslate_test.cpp" "tests/CMakeFiles/core_tests.dir/core/backtranslate_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/backtranslate_test.cpp.o.d"
  "/root/repo/tests/core/bitscan_test.cpp" "tests/CMakeFiles/core_tests.dir/core/bitscan_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/bitscan_test.cpp.o.d"
  "/root/repo/tests/core/comparator_test.cpp" "tests/CMakeFiles/core_tests.dir/core/comparator_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/comparator_test.cpp.o.d"
  "/root/repo/tests/core/encoding_test.cpp" "tests/CMakeFiles/core_tests.dir/core/encoding_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/encoding_test.cpp.o.d"
  "/root/repo/tests/core/golden_test.cpp" "tests/CMakeFiles/core_tests.dir/core/golden_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/golden_test.cpp.o.d"
  "/root/repo/tests/core/host_test.cpp" "tests/CMakeFiles/core_tests.dir/core/host_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/host_test.cpp.o.d"
  "/root/repo/tests/core/instance_test.cpp" "tests/CMakeFiles/core_tests.dir/core/instance_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/instance_test.cpp.o.d"
  "/root/repo/tests/core/mapper_test.cpp" "tests/CMakeFiles/core_tests.dir/core/mapper_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mapper_test.cpp.o.d"
  "/root/repo/tests/core/maskonly_test.cpp" "tests/CMakeFiles/core_tests.dir/core/maskonly_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/maskonly_test.cpp.o.d"
  "/root/repo/tests/core/querypack_test.cpp" "tests/CMakeFiles/core_tests.dir/core/querypack_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/querypack_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/threshold_test.cpp" "tests/CMakeFiles/core_tests.dir/core/threshold_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/threshold_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/fabp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/fabp/CMakeFiles/fabp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blast/CMakeFiles/fabp_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/fabp_align.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/fabp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/fabp_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fabp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
