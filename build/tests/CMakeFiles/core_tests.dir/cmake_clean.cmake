file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/accelerator_grid_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/accelerator_grid_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/accelerator_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/accelerator_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/array_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/array_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/backtranslate_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/backtranslate_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/bitscan_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/bitscan_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/comparator_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/comparator_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/encoding_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/encoding_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/golden_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/golden_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/host_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/host_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/instance_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/instance_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/mapper_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/mapper_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/maskonly_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/maskonly_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/querypack_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/querypack_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/threshold_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/threshold_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
