# Empty dependencies file for align_tests.
# This may be replaced when dependencies are built.
