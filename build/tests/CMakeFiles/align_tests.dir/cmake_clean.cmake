file(REMOVE_RECURSE
  "CMakeFiles/align_tests.dir/align/extension_test.cpp.o"
  "CMakeFiles/align_tests.dir/align/extension_test.cpp.o.d"
  "CMakeFiles/align_tests.dir/align/local_test.cpp.o"
  "CMakeFiles/align_tests.dir/align/local_test.cpp.o.d"
  "CMakeFiles/align_tests.dir/align/scoring_test.cpp.o"
  "CMakeFiles/align_tests.dir/align/scoring_test.cpp.o.d"
  "CMakeFiles/align_tests.dir/align/sliding_test.cpp.o"
  "CMakeFiles/align_tests.dir/align/sliding_test.cpp.o.d"
  "align_tests"
  "align_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
