file(REMOVE_RECURSE
  "CMakeFiles/hw_tests.dir/hw/axi_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/axi_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/device_power_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/device_power_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/lut_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/lut_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/netlist_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/netlist_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/optimize_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/optimize_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/popcount_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/popcount_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/timing_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/timing_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/vcd_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/vcd_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw/verilog_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw/verilog_test.cpp.o.d"
  "hw_tests"
  "hw_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
