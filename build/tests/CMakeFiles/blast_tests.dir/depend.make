# Empty dependencies file for blast_tests.
# This may be replaced when dependencies are built.
