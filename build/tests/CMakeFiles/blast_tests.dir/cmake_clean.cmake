file(REMOVE_RECURSE
  "CMakeFiles/blast_tests.dir/blast/evalue_test.cpp.o"
  "CMakeFiles/blast_tests.dir/blast/evalue_test.cpp.o.d"
  "CMakeFiles/blast_tests.dir/blast/kmer_index_test.cpp.o"
  "CMakeFiles/blast_tests.dir/blast/kmer_index_test.cpp.o.d"
  "CMakeFiles/blast_tests.dir/blast/seg_test.cpp.o"
  "CMakeFiles/blast_tests.dir/blast/seg_test.cpp.o.d"
  "CMakeFiles/blast_tests.dir/blast/tblastn_test.cpp.o"
  "CMakeFiles/blast_tests.dir/blast/tblastn_test.cpp.o.d"
  "blast_tests"
  "blast_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
