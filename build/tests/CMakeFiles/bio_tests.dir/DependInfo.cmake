
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bio/alphabet_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/alphabet_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/alphabet_test.cpp.o.d"
  "/root/repo/tests/bio/bitplanes_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/bitplanes_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/bitplanes_test.cpp.o.d"
  "/root/repo/tests/bio/codon_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/codon_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/codon_test.cpp.o.d"
  "/root/repo/tests/bio/codon_usage_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/codon_usage_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/codon_usage_test.cpp.o.d"
  "/root/repo/tests/bio/database_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/database_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/database_test.cpp.o.d"
  "/root/repo/tests/bio/fasta_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/fasta_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/fasta_test.cpp.o.d"
  "/root/repo/tests/bio/generate_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/generate_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/generate_test.cpp.o.d"
  "/root/repo/tests/bio/mutation_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/mutation_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/mutation_test.cpp.o.d"
  "/root/repo/tests/bio/packed_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/packed_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/packed_test.cpp.o.d"
  "/root/repo/tests/bio/sequence_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/sequence_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/sequence_test.cpp.o.d"
  "/root/repo/tests/bio/translation_test.cpp" "tests/CMakeFiles/bio_tests.dir/bio/translation_test.cpp.o" "gcc" "tests/CMakeFiles/bio_tests.dir/bio/translation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/fabp_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/fabp/CMakeFiles/fabp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blast/CMakeFiles/fabp_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/fabp_align.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/fabp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/fabp_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fabp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
