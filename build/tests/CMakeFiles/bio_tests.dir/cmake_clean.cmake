file(REMOVE_RECURSE
  "CMakeFiles/bio_tests.dir/bio/alphabet_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/alphabet_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/bitplanes_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/bitplanes_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/codon_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/codon_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/codon_usage_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/codon_usage_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/database_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/database_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/fasta_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/fasta_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/generate_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/generate_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/mutation_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/mutation_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/packed_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/packed_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/sequence_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/sequence_test.cpp.o.d"
  "CMakeFiles/bio_tests.dir/bio/translation_test.cpp.o"
  "CMakeFiles/bio_tests.dir/bio/translation_test.cpp.o.d"
  "bio_tests"
  "bio_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
