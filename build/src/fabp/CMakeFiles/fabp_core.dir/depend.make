# Empty dependencies file for fabp_core.
# This may be replaced when dependencies are built.
