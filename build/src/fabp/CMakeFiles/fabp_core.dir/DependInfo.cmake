
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabp/accelerator.cpp" "src/fabp/CMakeFiles/fabp_core.dir/accelerator.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/accelerator.cpp.o.d"
  "/root/repo/src/fabp/array.cpp" "src/fabp/CMakeFiles/fabp_core.dir/array.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/array.cpp.o.d"
  "/root/repo/src/fabp/backtranslate.cpp" "src/fabp/CMakeFiles/fabp_core.dir/backtranslate.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/backtranslate.cpp.o.d"
  "/root/repo/src/fabp/bitscan.cpp" "src/fabp/CMakeFiles/fabp_core.dir/bitscan.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/bitscan.cpp.o.d"
  "/root/repo/src/fabp/comparator.cpp" "src/fabp/CMakeFiles/fabp_core.dir/comparator.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/comparator.cpp.o.d"
  "/root/repo/src/fabp/encoding.cpp" "src/fabp/CMakeFiles/fabp_core.dir/encoding.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/encoding.cpp.o.d"
  "/root/repo/src/fabp/golden.cpp" "src/fabp/CMakeFiles/fabp_core.dir/golden.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/golden.cpp.o.d"
  "/root/repo/src/fabp/host.cpp" "src/fabp/CMakeFiles/fabp_core.dir/host.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/host.cpp.o.d"
  "/root/repo/src/fabp/instance.cpp" "src/fabp/CMakeFiles/fabp_core.dir/instance.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/instance.cpp.o.d"
  "/root/repo/src/fabp/mapper.cpp" "src/fabp/CMakeFiles/fabp_core.dir/mapper.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/mapper.cpp.o.d"
  "/root/repo/src/fabp/maskonly.cpp" "src/fabp/CMakeFiles/fabp_core.dir/maskonly.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/maskonly.cpp.o.d"
  "/root/repo/src/fabp/querypack.cpp" "src/fabp/CMakeFiles/fabp_core.dir/querypack.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/querypack.cpp.o.d"
  "/root/repo/src/fabp/report.cpp" "src/fabp/CMakeFiles/fabp_core.dir/report.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/report.cpp.o.d"
  "/root/repo/src/fabp/threshold.cpp" "src/fabp/CMakeFiles/fabp_core.dir/threshold.cpp.o" "gcc" "src/fabp/CMakeFiles/fabp_core.dir/threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/fabp_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/fabp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fabp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
