file(REMOVE_RECURSE
  "libfabp_core.a"
)
