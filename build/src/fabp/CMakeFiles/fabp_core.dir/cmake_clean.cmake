file(REMOVE_RECURSE
  "CMakeFiles/fabp_core.dir/accelerator.cpp.o"
  "CMakeFiles/fabp_core.dir/accelerator.cpp.o.d"
  "CMakeFiles/fabp_core.dir/array.cpp.o"
  "CMakeFiles/fabp_core.dir/array.cpp.o.d"
  "CMakeFiles/fabp_core.dir/backtranslate.cpp.o"
  "CMakeFiles/fabp_core.dir/backtranslate.cpp.o.d"
  "CMakeFiles/fabp_core.dir/bitscan.cpp.o"
  "CMakeFiles/fabp_core.dir/bitscan.cpp.o.d"
  "CMakeFiles/fabp_core.dir/comparator.cpp.o"
  "CMakeFiles/fabp_core.dir/comparator.cpp.o.d"
  "CMakeFiles/fabp_core.dir/encoding.cpp.o"
  "CMakeFiles/fabp_core.dir/encoding.cpp.o.d"
  "CMakeFiles/fabp_core.dir/golden.cpp.o"
  "CMakeFiles/fabp_core.dir/golden.cpp.o.d"
  "CMakeFiles/fabp_core.dir/host.cpp.o"
  "CMakeFiles/fabp_core.dir/host.cpp.o.d"
  "CMakeFiles/fabp_core.dir/instance.cpp.o"
  "CMakeFiles/fabp_core.dir/instance.cpp.o.d"
  "CMakeFiles/fabp_core.dir/mapper.cpp.o"
  "CMakeFiles/fabp_core.dir/mapper.cpp.o.d"
  "CMakeFiles/fabp_core.dir/maskonly.cpp.o"
  "CMakeFiles/fabp_core.dir/maskonly.cpp.o.d"
  "CMakeFiles/fabp_core.dir/querypack.cpp.o"
  "CMakeFiles/fabp_core.dir/querypack.cpp.o.d"
  "CMakeFiles/fabp_core.dir/report.cpp.o"
  "CMakeFiles/fabp_core.dir/report.cpp.o.d"
  "CMakeFiles/fabp_core.dir/threshold.cpp.o"
  "CMakeFiles/fabp_core.dir/threshold.cpp.o.d"
  "libfabp_core.a"
  "libfabp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
