file(REMOVE_RECURSE
  "libfabp_bio.a"
)
