
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/alphabet.cpp" "src/bio/CMakeFiles/fabp_bio.dir/alphabet.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/alphabet.cpp.o.d"
  "/root/repo/src/bio/bitplanes.cpp" "src/bio/CMakeFiles/fabp_bio.dir/bitplanes.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/bitplanes.cpp.o.d"
  "/root/repo/src/bio/codon.cpp" "src/bio/CMakeFiles/fabp_bio.dir/codon.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/codon.cpp.o.d"
  "/root/repo/src/bio/codon_usage.cpp" "src/bio/CMakeFiles/fabp_bio.dir/codon_usage.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/codon_usage.cpp.o.d"
  "/root/repo/src/bio/database.cpp" "src/bio/CMakeFiles/fabp_bio.dir/database.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/database.cpp.o.d"
  "/root/repo/src/bio/fasta.cpp" "src/bio/CMakeFiles/fabp_bio.dir/fasta.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/fasta.cpp.o.d"
  "/root/repo/src/bio/generate.cpp" "src/bio/CMakeFiles/fabp_bio.dir/generate.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/generate.cpp.o.d"
  "/root/repo/src/bio/mutation.cpp" "src/bio/CMakeFiles/fabp_bio.dir/mutation.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/mutation.cpp.o.d"
  "/root/repo/src/bio/packed.cpp" "src/bio/CMakeFiles/fabp_bio.dir/packed.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/packed.cpp.o.d"
  "/root/repo/src/bio/sequence.cpp" "src/bio/CMakeFiles/fabp_bio.dir/sequence.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/sequence.cpp.o.d"
  "/root/repo/src/bio/translation.cpp" "src/bio/CMakeFiles/fabp_bio.dir/translation.cpp.o" "gcc" "src/bio/CMakeFiles/fabp_bio.dir/translation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fabp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
