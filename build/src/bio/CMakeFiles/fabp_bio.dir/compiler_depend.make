# Empty compiler generated dependencies file for fabp_bio.
# This may be replaced when dependencies are built.
