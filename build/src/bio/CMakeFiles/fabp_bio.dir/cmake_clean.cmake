file(REMOVE_RECURSE
  "CMakeFiles/fabp_bio.dir/alphabet.cpp.o"
  "CMakeFiles/fabp_bio.dir/alphabet.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/bitplanes.cpp.o"
  "CMakeFiles/fabp_bio.dir/bitplanes.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/codon.cpp.o"
  "CMakeFiles/fabp_bio.dir/codon.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/codon_usage.cpp.o"
  "CMakeFiles/fabp_bio.dir/codon_usage.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/database.cpp.o"
  "CMakeFiles/fabp_bio.dir/database.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/fasta.cpp.o"
  "CMakeFiles/fabp_bio.dir/fasta.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/generate.cpp.o"
  "CMakeFiles/fabp_bio.dir/generate.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/mutation.cpp.o"
  "CMakeFiles/fabp_bio.dir/mutation.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/packed.cpp.o"
  "CMakeFiles/fabp_bio.dir/packed.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/sequence.cpp.o"
  "CMakeFiles/fabp_bio.dir/sequence.cpp.o.d"
  "CMakeFiles/fabp_bio.dir/translation.cpp.o"
  "CMakeFiles/fabp_bio.dir/translation.cpp.o.d"
  "libfabp_bio.a"
  "libfabp_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabp_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
