# Empty dependencies file for fabp_hw.
# This may be replaced when dependencies are built.
