file(REMOVE_RECURSE
  "libfabp_hw.a"
)
