
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/axi.cpp" "src/hw/CMakeFiles/fabp_hw.dir/axi.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/axi.cpp.o.d"
  "/root/repo/src/hw/device.cpp" "src/hw/CMakeFiles/fabp_hw.dir/device.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/device.cpp.o.d"
  "/root/repo/src/hw/lut.cpp" "src/hw/CMakeFiles/fabp_hw.dir/lut.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/lut.cpp.o.d"
  "/root/repo/src/hw/netlist.cpp" "src/hw/CMakeFiles/fabp_hw.dir/netlist.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/netlist.cpp.o.d"
  "/root/repo/src/hw/optimize.cpp" "src/hw/CMakeFiles/fabp_hw.dir/optimize.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/optimize.cpp.o.d"
  "/root/repo/src/hw/popcount.cpp" "src/hw/CMakeFiles/fabp_hw.dir/popcount.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/popcount.cpp.o.d"
  "/root/repo/src/hw/power.cpp" "src/hw/CMakeFiles/fabp_hw.dir/power.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/power.cpp.o.d"
  "/root/repo/src/hw/timing.cpp" "src/hw/CMakeFiles/fabp_hw.dir/timing.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/timing.cpp.o.d"
  "/root/repo/src/hw/vcd.cpp" "src/hw/CMakeFiles/fabp_hw.dir/vcd.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/vcd.cpp.o.d"
  "/root/repo/src/hw/verilog.cpp" "src/hw/CMakeFiles/fabp_hw.dir/verilog.cpp.o" "gcc" "src/hw/CMakeFiles/fabp_hw.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fabp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
