file(REMOVE_RECURSE
  "CMakeFiles/fabp_hw.dir/axi.cpp.o"
  "CMakeFiles/fabp_hw.dir/axi.cpp.o.d"
  "CMakeFiles/fabp_hw.dir/device.cpp.o"
  "CMakeFiles/fabp_hw.dir/device.cpp.o.d"
  "CMakeFiles/fabp_hw.dir/lut.cpp.o"
  "CMakeFiles/fabp_hw.dir/lut.cpp.o.d"
  "CMakeFiles/fabp_hw.dir/netlist.cpp.o"
  "CMakeFiles/fabp_hw.dir/netlist.cpp.o.d"
  "CMakeFiles/fabp_hw.dir/optimize.cpp.o"
  "CMakeFiles/fabp_hw.dir/optimize.cpp.o.d"
  "CMakeFiles/fabp_hw.dir/popcount.cpp.o"
  "CMakeFiles/fabp_hw.dir/popcount.cpp.o.d"
  "CMakeFiles/fabp_hw.dir/power.cpp.o"
  "CMakeFiles/fabp_hw.dir/power.cpp.o.d"
  "CMakeFiles/fabp_hw.dir/timing.cpp.o"
  "CMakeFiles/fabp_hw.dir/timing.cpp.o.d"
  "CMakeFiles/fabp_hw.dir/vcd.cpp.o"
  "CMakeFiles/fabp_hw.dir/vcd.cpp.o.d"
  "CMakeFiles/fabp_hw.dir/verilog.cpp.o"
  "CMakeFiles/fabp_hw.dir/verilog.cpp.o.d"
  "libfabp_hw.a"
  "libfabp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
