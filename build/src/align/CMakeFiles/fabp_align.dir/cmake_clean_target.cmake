file(REMOVE_RECURSE
  "libfabp_align.a"
)
