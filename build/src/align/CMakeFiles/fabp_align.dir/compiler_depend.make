# Empty compiler generated dependencies file for fabp_align.
# This may be replaced when dependencies are built.
