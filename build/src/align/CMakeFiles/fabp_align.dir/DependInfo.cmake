
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/extension.cpp" "src/align/CMakeFiles/fabp_align.dir/extension.cpp.o" "gcc" "src/align/CMakeFiles/fabp_align.dir/extension.cpp.o.d"
  "/root/repo/src/align/local.cpp" "src/align/CMakeFiles/fabp_align.dir/local.cpp.o" "gcc" "src/align/CMakeFiles/fabp_align.dir/local.cpp.o.d"
  "/root/repo/src/align/scoring.cpp" "src/align/CMakeFiles/fabp_align.dir/scoring.cpp.o" "gcc" "src/align/CMakeFiles/fabp_align.dir/scoring.cpp.o.d"
  "/root/repo/src/align/sliding.cpp" "src/align/CMakeFiles/fabp_align.dir/sliding.cpp.o" "gcc" "src/align/CMakeFiles/fabp_align.dir/sliding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/fabp_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fabp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
