file(REMOVE_RECURSE
  "CMakeFiles/fabp_align.dir/extension.cpp.o"
  "CMakeFiles/fabp_align.dir/extension.cpp.o.d"
  "CMakeFiles/fabp_align.dir/local.cpp.o"
  "CMakeFiles/fabp_align.dir/local.cpp.o.d"
  "CMakeFiles/fabp_align.dir/scoring.cpp.o"
  "CMakeFiles/fabp_align.dir/scoring.cpp.o.d"
  "CMakeFiles/fabp_align.dir/sliding.cpp.o"
  "CMakeFiles/fabp_align.dir/sliding.cpp.o.d"
  "libfabp_align.a"
  "libfabp_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabp_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
