file(REMOVE_RECURSE
  "CMakeFiles/fabp_blast.dir/evalue.cpp.o"
  "CMakeFiles/fabp_blast.dir/evalue.cpp.o.d"
  "CMakeFiles/fabp_blast.dir/kmer_index.cpp.o"
  "CMakeFiles/fabp_blast.dir/kmer_index.cpp.o.d"
  "CMakeFiles/fabp_blast.dir/seg.cpp.o"
  "CMakeFiles/fabp_blast.dir/seg.cpp.o.d"
  "CMakeFiles/fabp_blast.dir/tblastn.cpp.o"
  "CMakeFiles/fabp_blast.dir/tblastn.cpp.o.d"
  "libfabp_blast.a"
  "libfabp_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabp_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
