file(REMOVE_RECURSE
  "libfabp_blast.a"
)
