# Empty dependencies file for fabp_blast.
# This may be replaced when dependencies are built.
