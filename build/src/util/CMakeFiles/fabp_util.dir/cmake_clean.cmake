file(REMOVE_RECURSE
  "CMakeFiles/fabp_util.dir/bitops.cpp.o"
  "CMakeFiles/fabp_util.dir/bitops.cpp.o.d"
  "CMakeFiles/fabp_util.dir/rng.cpp.o"
  "CMakeFiles/fabp_util.dir/rng.cpp.o.d"
  "CMakeFiles/fabp_util.dir/stats.cpp.o"
  "CMakeFiles/fabp_util.dir/stats.cpp.o.d"
  "CMakeFiles/fabp_util.dir/table.cpp.o"
  "CMakeFiles/fabp_util.dir/table.cpp.o.d"
  "CMakeFiles/fabp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fabp_util.dir/thread_pool.cpp.o.d"
  "libfabp_util.a"
  "libfabp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
