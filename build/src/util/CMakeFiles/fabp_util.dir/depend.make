# Empty dependencies file for fabp_util.
# This may be replaced when dependencies are built.
