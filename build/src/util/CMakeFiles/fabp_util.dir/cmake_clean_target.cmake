file(REMOVE_RECURSE
  "libfabp_util.a"
)
