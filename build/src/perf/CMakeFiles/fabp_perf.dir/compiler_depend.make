# Empty compiler generated dependencies file for fabp_perf.
# This may be replaced when dependencies are built.
