file(REMOVE_RECURSE
  "CMakeFiles/fabp_perf.dir/figure6.cpp.o"
  "CMakeFiles/fabp_perf.dir/figure6.cpp.o.d"
  "CMakeFiles/fabp_perf.dir/models.cpp.o"
  "CMakeFiles/fabp_perf.dir/models.cpp.o.d"
  "CMakeFiles/fabp_perf.dir/platform.cpp.o"
  "CMakeFiles/fabp_perf.dir/platform.cpp.o.d"
  "libfabp_perf.a"
  "libfabp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
