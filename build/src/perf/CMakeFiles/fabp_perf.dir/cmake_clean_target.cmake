file(REMOVE_RECURSE
  "libfabp_perf.a"
)
