#!/usr/bin/env bash
# One-command tier-1 verification, twice over:
#
#   1. default Release build + full ctest — exercises the runtime-dispatched
#      scan kernel (the widest ISA this machine supports), and
#   2. an AddressSanitizer build run with FABP_FORCE_ISA=swar64 — sanitizer
#      coverage over the portable fallback kernel and the env-override
#      dispatch path.
#
# Usage: tools/check.sh   (from anywhere; builds into build/ and build-asan/)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== check.sh: default build =="
cmake -B build -S .
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs"

echo "== check.sh: asan build, FABP_FORCE_ISA=swar64 =="
cmake -B build-asan -S . -DFABP_SANITIZE=address
cmake --build build-asan -j"$jobs"
FABP_FORCE_ISA=swar64 ctest --test-dir build-asan --output-on-failure -j"$jobs"

echo "== check.sh: all green (default + asan/swar64) =="
