#!/usr/bin/env bash
# One-command tier-1 verification, four times over:
#
#   1. default Release build + full ctest — exercises the runtime-dispatched
#      scan kernel (the widest ISA this machine supports), and
#   2. an AddressSanitizer build run with FABP_FORCE_ISA=swar64 — sanitizer
#      coverage over the portable fallback kernel and the env-override
#      dispatch path, and
#   3. a ThreadSanitizer build running the pooled tiled-scan, thread-pool
#      and serving-engine tests — race coverage over the tile-parallel
#      merge, the concurrent strand-plane compile, and the engine's
#      submit/cancel/coalesce machinery, and
#   4. an UndefinedBehaviorSanitizer build running the fault-injection and
#      chaos suites — UB coverage over beat corruption, CRC repair and the
#      retry/degrade state machine, and
#   5. the engine stress suite pinned to the swar64 kernel — a
#      deterministic-ISA concurrency exercise of the coalescing scheduler
#      (same kernel on every machine, so schedules differ but hit lists
#      cannot), and
#   6. the device batch scheduler chaos leg — the DeviceScheduler
#      differential/fault suite (packed invocations, multi-PE slicing,
#      depth-replay, retry/degrade at batch granularity) plus a
#      `fabp serve --backend hwsim` smoke run that must report the
#      pipeline stats line in its metrics dump, and
#   7. the kernel differential suites once per forced ISA the host can
#      actually run (swar64|avx2|avx512|avx512vpopcnt, probed via
#      `fabp isa`; unsupported ISAs are skipped) — every SIMD kernel is
#      held to the scalar oracle through the same env-override path users
#      would pin it with, and
#   8. the shard router leg — the sharded-vs-unsharded differential, the
#      shard chaos/fault-isolation suite and the TCP serve smoke
#      (spawn server, loadgen over localhost, SIGTERM, clean drain), and
#   9. the net-chaos leg — the service-resilience suite (deadline
#      propagation, typed shedding, malformed frames, EINTR/short-write
#      resume, slow-loris reaping, bounded drain, fault-injected chaos
#      runs) under tsan, plus the overload smoke: offered load past
#      capacity must shed typed Overloaded, keep p99 bounded and drain
#      cleanly with zero crashes, and
#  10. the tenant leg — versioned multi-tenant reference management
#      (`ctest -L tenant`): named-database routing, quota/weight
#      admission, hot swap under load (hit-for-hit vs the admitted
#      generation) run again under tsan, epoch reclamation under asan,
#      and the live-swap TCP smoke (SwapDatabase mid-loadgen, zero
#      failed requests, retired generations reclaimed).
#
# Usage: tools/check.sh   (from anywhere; builds into build/, build-asan/,
# build-tsan/ and build-ubsan/)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== check.sh: default build =="
cmake -B build -S .
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure -j"$jobs"

echo "== check.sh: asan build, FABP_FORCE_ISA=swar64 =="
cmake -B build-asan -S . -DFABP_SANITIZE=address
cmake --build build-asan -j"$jobs"
FABP_FORCE_ISA=swar64 ctest --test-dir build-asan --output-on-failure -j"$jobs"

echo "== check.sh: tsan build, pooled scan + engine + shard tests =="
cmake -B build-tsan -S . -DFABP_SANITIZE=thread
cmake --build build-tsan -j"$jobs" \
    --target core_tests util_tests engine_tests shard_tests net_tests \
             resilience_tests tenant_tests
build-tsan/tests/core_tests --gtest_filter='TileScan*'
build-tsan/tests/util_tests --gtest_filter='ThreadPool*'
build-tsan/tests/engine_tests
# Race coverage over the shard router's per-shard worker queues and the
# TCP server's connection threads (sharded differential + chaos + net).
build-tsan/tests/shard_tests
build-tsan/tests/net_tests

echo "== check.sh: ubsan build, fault + chaos suites =="
cmake -B build-ubsan -S . -DFABP_SANITIZE=undefined
cmake --build build-ubsan -j"$jobs" --target core_tests hw_tests
build-ubsan/tests/hw_tests --gtest_filter='Fault*:CorruptWords*'
build-ubsan/tests/core_tests --gtest_filter='Chaos*'

echo "== check.sh: engine stress, FABP_FORCE_ISA=swar64 =="
FABP_FORCE_ISA=swar64 build/tests/engine_tests \
    --gtest_filter='Engine.Stress*:Engine.Coalesc*'
FABP_FORCE_ISA=swar64 build/tools/fabp serve 50000 16 128 2 >/dev/null

echo "== check.sh: device batch scheduler chaos suite =="
build/tests/engine_tests --gtest_filter='DeviceScheduler.*'
build/tests/hw_tests \
    --gtest_filter='PackInvocations*:PipelineTimeline*:CyclesForBeats*'
build/tools/fabp serve 50000 16 128 2 --backend hwsim \
    | grep -q '^pipeline: invocations=' \
    || { echo "serve --backend hwsim printed no pipeline stats"; exit 1; }

echo "== check.sh: kernel differential suites per forced ISA =="
for isa in swar64 avx2 avx512 avx512vpopcnt; do
  if build/tools/fabp isa | grep -qx "$isa"; then
    echo "-- FABP_FORCE_ISA=$isa"
    FABP_FORCE_ISA="$isa" build/tests/core_tests \
        --gtest_filter='ScanKernels*:ScanCsa*:TileScan*'
  else
    echo "-- $isa not reachable on this host, skipped"
  fi
done

echo "== check.sh: shard router leg =="
build/tests/shard_tests
build/tests/net_tests
tools/serve_tcp_smoke.sh build/tools/fabp

echo "== check.sh: net-chaos leg (resilience under tsan + overload smoke) =="
# Race coverage over the fault-injected connection handlers, the retrying
# client, drain force-cancel vs in-flight tickets, and the attacker
# threads in the chaos loadgen runs.
build-tsan/tests/resilience_tests
build/tests/resilience_tests
tools/serve_tcp_overload_smoke.sh build/tools/fabp

echo "== check.sh: tenant leg (multi-tenant swaps, tsan + asan + live smoke) =="
ctest --test-dir build --output-on-failure -L tenant -j"$jobs"
# Race coverage over concurrent submit/swap/status against the versioned
# store, the stride scheduler and the per-generation backend sets.
build-tsan/tests/tenant_tests
# Leak/lifetime coverage over epoch reclamation: retired generations
# (stores, shard slices, caches) must free exactly once, when the last
# pinned request settles.
cmake --build build-asan -j"$jobs" --target tenant_tests
build-asan/tests/tenant_tests
tools/serve_tcp_swap_smoke.sh build/tools/fabp

echo "== check.sh: all green (default + asan/swar64 + tsan + ubsan/chaos + engine/swar64 + scheduler + per-isa + shard + net-chaos + tenant) =="
