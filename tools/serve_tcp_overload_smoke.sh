#!/usr/bin/env bash
# Overload smoke of the TCP front-end: spawn `fabp serve --tcp` with a
# deliberately tiny shed threshold and one worker, then offer ~8x that
# concurrency through the retrying loadgen.  The server must shed with
# typed Overloaded refusals (shed counter > 0 in the final dump), every
# loadgen request must reach a typed terminal outcome (loadgen exit 0),
# client-observed p99 must stay bounded by the request deadline, and the
# server must still drain cleanly on SIGTERM — zero crashes past the
# shed threshold.
# Usage: serve_tcp_overload_smoke.sh <path-to-fabp-binary>
set -euo pipefail

FABP="${1:?usage: serve_tcp_overload_smoke.sh <path-to-fabp>}"
out="$(mktemp)"
load_out="$(mktemp)"
pid=""
trap 'kill -9 "$pid" 2>/dev/null || true; rm -f "$out" "$load_out"' EXIT

# 500k bases + one worker: each coalesced batch takes long enough that
# the admission queue visibly builds past the shed threshold of 2.
"$FABP" serve 500000 12 64 1 --backend hwsim --tcp 0 \
  --shed-depth 2 --max-inflight 8 --drain-timeout 2 \
  >"$out" 2>/dev/null &
pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$out")"
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died before listening"; exit 1; }
  sleep 0.1
done
[ -n "$port" ] || { echo "server never reported its port"; exit 1; }

# 8 clients against 1 worker and shed-depth 2: offered load is well past
# capacity.  --deadline-ms makes this a resilience run (exit 0 iff every
# request reached a typed terminal outcome); --retries exercises the
# Overloaded -> backoff -> retry path against real shed refusals.
deadline_ms=8000
"$FABP" loadgen 127.0.0.1 "$port" 64 8 12 \
  --deadline-ms "$deadline_ms" --retries 3 | tee "$load_out" \
  || { echo "loadgen saw a hung or untyped request"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "server crashed under overload"; exit 1; }

grep -q '^drained$' "$out" || { echo "no clean drain marker"; cat "$out"; exit 1; }
shed="$(sed -n 's/.* shed=\([0-9]*\) .*/\1/p' "$out")"
[ -n "$shed" ] || { echo "no shed counter in server dump"; cat "$out"; exit 1; }
[ "$shed" -gt 0 ] || { echo "server never shed past the threshold"; cat "$out"; exit 1; }

# Client-observed p99 must stay bounded by the deadline budget: nothing
# waited past deadline + grace, shed or not.
p99="$(sed -n 's/.* p99=\([0-9.]*\)ms$/\1/p' "$load_out")"
[ -n "$p99" ] || { echo "no p99 in loadgen output"; cat "$load_out"; exit 1; }
awk -v p99="$p99" -v cap="$deadline_ms" 'BEGIN { exit !(p99 + 0 < cap + 500) }' \
  || { echo "p99 ${p99}ms not bounded by deadline ${deadline_ms}ms"; exit 1; }

echo "serve_tcp overload smoke ok (shed=$shed p99=${p99}ms)"
