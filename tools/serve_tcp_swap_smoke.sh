#!/usr/bin/env bash
# Hot-swap smoke of the TCP front-end: spawn `fabp serve --tcp`, run a
# 16-client loadgen burst, and publish a new reference generation through
# `fabp swap` while that burst is in flight.  The swap must be admitted
# (generation 2 echoed to the swap client), every loadgen request must
# complete (zero failures — in-flight requests finish on the generation
# they were admitted under), and the final stats dump must show the
# retired generations reclaimed once the last pinned request settled.
# Usage: serve_tcp_swap_smoke.sh <path-to-fabp-binary>
set -euo pipefail

FABP="${1:?usage: serve_tcp_swap_smoke.sh <path-to-fabp>}"
out="$(mktemp)"
swap_out="$(mktemp)"
ref2="$(mktemp)"
pid=""
load_pid=""
trap 'kill -9 "$pid" "$load_pid" 2>/dev/null || true;
      rm -f "$out" "$swap_out" "$ref2"' EXIT

# 200k bases keeps each coalesced batch slow enough that the loadgen run
# below spans the mid-flight swap.
"$FABP" serve 200000 12 64 2 --backend hwsim --tcp 0 \
  >"$out" 2>/dev/null &
pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$out")"
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died before listening"; exit 1; }
  sleep 0.1
done
[ -n "$port" ] || { echo "server never reported its port"; exit 1; }

# Strict-contract loadgen (no deadline, no attackers): exit 0 iff every
# single request completed ok — a swap that failed or wedged even one
# in-flight request fails the smoke.
"$FABP" loadgen 127.0.0.1 "$port" 512 16 12 &
load_pid=$!

# Publish a new generation of the default database while the burst runs.
(tr -dc 'ACGT' </dev/urandom || true) | head -c 200000 >"$ref2"
sleep 0.3
"$FABP" swap 127.0.0.1 "$port" default "$ref2" >"$swap_out" 2>&1 \
  || { echo "swap request failed"; cat "$swap_out"; exit 1; }
grep -q 'generation 2' "$swap_out" \
  || { echo "swap did not publish generation 2"; cat "$swap_out"; exit 1; }

wait "$load_pid" \
  || { echo "loadgen saw failed requests across the swap"; exit 1; }
# Give the worker that fulfilled the last request a beat to drop its
# batch pin, then ask for the final stats dump.
sleep 0.3

kill -TERM "$pid"
wait "$pid"

grep -q '^drained$' "$out" || { echo "no clean drain marker"; cat "$out"; exit 1; }
db_line="$(grep '^database default:' "$out")" \
  || { echo "no database stats in dump"; cat "$out"; exit 1; }
echo "$db_line" | grep -q 'generation=2' \
  || { echo "server not serving generation 2"; cat "$out"; exit 1; }
reclaimed="$(echo "$db_line" | sed -n 's/.* reclaimed=\([0-9]*\).*/\1/p')"
# Generation 0 (empty) reclaims at the first upload, generation 1 when
# the last request admitted under it settles.
[ -n "$reclaimed" ] && [ "$reclaimed" -ge 2 ] \
  || { echo "retired generation never reclaimed"; cat "$out"; exit 1; }

echo "serve_tcp swap smoke ok ($db_line)"
