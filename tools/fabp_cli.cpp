// fabp — command-line front end for the library.
//
//   fabp encode <protein>                      back-translate + encode
//   fabp search <ref.fa> <queries.fa> [thr]    database search with reports
//   fabp scan <ref.fa> <queries.fa> [thr] [t]  software tiled scan, t threads
//   fabp tblastn <ref.fa> <queries.fa>         CPU-baseline search
//   fabp map <residues> [kintex7|vu9p]         resource mapping (Table I)
//   fabp rtl <out_dir> [elements]              export structural Verilog
//   fabp chaos [bases] [query-aa] [seeds] [rates...]
//                                              fault-injection sweep vs golden
//   fabp serve [bases] [query-aa] [requests] [workers]
//              [--backend hwsim|tiled|planes] [--shards N] [--tcp [port]]
//                                              engine serving demo: burst of
//                                              concurrent requests, coalesced,
//                                              checked against sequential;
//                                              hwsim prints the device batch
//                                              pipeline stats.  --shards routes
//                                              through the shard router (N
//                                              modeled cards); --tcp turns the
//                                              demo into a real TCP server
//                                              (length-prefixed wire protocol,
//                                              port 0 = kernel-assigned,
//                                              SIGTERM/SIGINT = graceful drain)
//   fabp loadgen <host> <port> [requests] [clients] [query-aa]
//                                              closed-loop TCP client against
//                                              a `fabp serve --tcp` server;
//                                              prints QPS and p50/p99 latency
//   fabp swap <host> <port> <name> <path>      publish a new generation of
//                                              database <name> on a live
//                                              server (server-side reference
//                                              file; --inline sends the local
//                                              file's bases over the wire)
//
// Multi-tenant serving (PR 10): `fabp serve` accepts repeatable
// `--db name=path` (additional named databases resident next to the
// default one) and `--tenant name=weight[:quota]` (weighted fair-share
// admission); `fabp loadgen` routes with `--db name` / `--tenant name`.
//
// Exit code 0 on success, 1 on usage/product errors.

#include <cctype>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fabp/fabp.hpp"

namespace {

using namespace fabp;

int usage() {
  std::cerr <<
      "usage:\n"
      "  fabp encode <protein>\n"
      "  fabp search <ref.fa> <queries.fa> [threshold-fraction]\n"
      "  fabp scan <ref.fa> <queries.fa> [threshold-fraction] [threads]\n"
      "  fabp tblastn <ref.fa> <queries.fa>\n"
      "  fabp map <residues> [kintex7|vu9p]\n"
      "  fabp rtl <out_dir> [elements]\n"
      "  fabp chaos [bases] [query-aa] [seeds] [flip-rates...]\n"
      "  fabp isa\n"
      "  fabp serve [bases] [query-aa] [requests] [workers]"
      " [--backend hwsim|tiled|planes] [--shards N] [--tcp [port]]\n"
      "             [--db name=path]... [--tenant name=weight[:quota]]...\n"
      "             [--shed-depth N] [--shed-p99 MS] [--max-inflight N]\n"
      "             [--idle-timeout S] [--io-timeout S] [--drain-timeout S]\n"
      "             [--net-fault-rate R] [--net-fault-seed S]\n"
      "  fabp loadgen <host> <port> [requests] [clients] [query-aa]\n"
      "             [--db name] [--tenant name]\n"
      "             [--deadline-ms N] [--retries N] [--faulty-fraction F]\n"
      "             [--net-fault-rate R] [--net-fault-seed S]\n"
      "  fabp swap <host> <port> <name> <path> [--inline]\n";
  return 1;
}

core::BackendKind backend_kind_from(const std::string& name) {
  if (name == "hwsim") return core::BackendKind::HwSim;
  if (name == "tiled") return core::BackendKind::Tiled;
  if (name == "planes") return core::BackendKind::Planes;
  throw std::runtime_error{"unknown backend: " + name +
                           " (expected hwsim, tiled or planes)"};
}

/// Loads a reference as FASTA (leading '>') or raw ACGT text (whitespace
/// tolerated) — the formats `--db name=path` and `fabp swap` accept.
bio::PackedNucleotides load_reference_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open reference file: " + path};
  if (in.peek() == '>') {
    const auto db = bio::ReferenceDatabase::from_fasta(bio::read_fasta(in));
    return db.packed();
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  std::erase_if(text, [](unsigned char ch) { return std::isspace(ch); });
  return bio::PackedNucleotides{
      bio::NucleotideSequence::parse(bio::SeqKind::Dna, text)};
}

/// `name=value` splitter for --db and --tenant operands.
std::pair<std::string, std::string> split_name_value(
    const std::string& arg, const char* flag) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size())
    throw std::runtime_error{std::string{flag} +
                             " expects name=value, got: " + arg};
  return {arg.substr(0, eq), arg.substr(eq + 1)};
}

/// `--tenant name=weight[:quota]` parser.
core::TenantConfig parse_tenant_flag(const std::string& arg) {
  auto [name, spec] = split_name_value(arg, "--tenant");
  core::TenantConfig tenant;
  tenant.name = std::move(name);
  const std::size_t colon = spec.find(':');
  tenant.weight = std::strtod(spec.substr(0, colon).c_str(), nullptr);
  if (colon != std::string::npos)
    tenant.queue_quota =
        std::strtoull(spec.substr(colon + 1).c_str(), nullptr, 10);
  if (tenant.weight <= 0.0)
    throw std::runtime_error{"--tenant weight must be > 0: " + arg};
  return tenant;
}

// Reachable scan-kernel names, one per line, dispatch-priority last so
// `fabp isa | tail -1` is the kernel a plain scan would use.  check.sh
// uses this to skip FABP_FORCE_ISA legs the host cannot run.
int cmd_isa() {
  for (core::ScanIsa isa : core::kAllScanIsas)
    if (const core::ScanKernel* kernel = core::scan_kernel_for(isa))
      std::cout << kernel->name << "\n";
  return 0;
}

int cmd_encode(const std::string& text) {
  const auto protein = bio::ProteinSequence::parse(text);
  const auto elements = core::back_translate(protein);
  const auto instructions = core::encode_query(protein);
  for (std::size_t i = 0; i < protein.size(); ++i) {
    std::cout << bio::to_three_letter(protein[i]) << ": ";
    for (std::size_t k = 0; k < 3; ++k)
      std::cout << core::to_string(elements[3 * i + k])
                << (k < 2 ? " " : "  ->  ");
    for (std::size_t k = 0; k < 3; ++k)
      std::cout << instructions[3 * i + k].to_binary_string()
                << (k < 2 ? " " : "\n");
  }
  const core::PackedQuery packed{instructions};
  std::cout << "packed: " << packed.byte_size() << " bytes in DRAM\n";
  return 0;
}

int cmd_search(const std::string& ref_path, const std::string& query_path,
               double threshold_fraction) {
  const auto db =
      bio::ReferenceDatabase::from_fasta(bio::read_fasta_file(ref_path));
  std::cerr << "database: " << db.record_count() << " records, "
            << db.total_bases() << " bases\n";

  std::vector<bio::ProteinSequence> queries;
  std::vector<std::string> names;
  for (const auto& record : bio::read_fasta_file(query_path)) {
    queries.push_back(bio::ProteinSequence::parse(record.sequence));
    names.push_back(record.id);
  }
  if (queries.empty()) {
    std::cerr << "no queries\n";
    return 1;
  }

  core::Session session;
  session.upload_reference(db.packed());
  const auto batch = session.align_batch(queries, threshold_fraction);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto annotated =
        core::annotate_hits(batch.per_query[q].hits, db, queries[q]);
    std::cout << names[q] << "\t" << annotated.size() << " hit(s)\n";
    for (const auto& hit : annotated)
      std::cout << "  " << core::to_string(hit, db) << '\n';
  }
  std::cerr << "modeled card time: " << util::time_text(batch.total_s)
            << " (" << batch.queries_per_second << " queries/s)\n";
  return 0;
}

int cmd_scan(const std::string& ref_path, const std::string& query_path,
             double threshold_fraction, std::size_t threads) {
  // Pure-software database scan (no accelerator timing model): one
  // tile-fused pass over the packed database per batch, chunked over the
  // pool.  FABP_SCAN_MODE=planes switches to the precompiled-plane path
  // for comparison; hits are identical either way.
  const auto db =
      bio::ReferenceDatabase::from_fasta(bio::read_fasta_file(ref_path));
  std::cerr << "database: " << db.record_count() << " records, "
            << db.total_bases() << " bases\n";

  std::vector<bio::ProteinSequence> queries;
  std::vector<std::string> names;
  for (const auto& record : bio::read_fasta_file(query_path)) {
    queries.push_back(bio::ProteinSequence::parse(record.sequence));
    names.push_back(record.id);
  }
  if (queries.empty()) {
    std::cerr << "no queries\n";
    return 1;
  }

  std::vector<core::BitScanQuery> compiled;
  std::vector<std::uint32_t> thresholds;
  for (const auto& query : queries) {
    compiled.emplace_back(core::back_translate(query));
    thresholds.push_back(static_cast<std::uint32_t>(
        threshold_fraction * static_cast<double>(query.size() * 3)));
  }

  util::ThreadPool pool{threads};
  util::Timer timer;
  std::vector<std::vector<core::Hit>> outs;
  if (core::use_tiled_scan()) {
    const core::TileScanner scanner{db};
    std::cerr << "scan path: tiled (" << scanner.tile_positions()
              << " positions/tile, " << scanner.tile_count() << " tiles, "
              << pool.size() << " threads)\n";
    outs = scanner.hits_batch(compiled, thresholds, &pool);
  } else {
    std::cerr << "scan path: planes (" << pool.size() << " threads)\n";
    const core::BitScanReference reference{db.packed()};
    outs = core::bitscan_hits_batch(compiled, reference, thresholds, &pool);
  }
  const double seconds = timer.seconds();

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto annotated = core::annotate_hits(outs[q], db, queries[q]);
    std::cout << names[q] << "\t" << annotated.size() << " hit(s)\n";
    for (const auto& hit : annotated)
      std::cout << "  " << core::to_string(hit, db) << '\n';
  }
  std::cerr << "scan time: " << util::time_text(seconds) << '\n';
  return 0;
}

int cmd_tblastn(const std::string& ref_path, const std::string& query_path) {
  const auto refs = bio::read_fasta_file(ref_path);
  const auto queries = bio::read_fasta_file(query_path);
  util::Timer timer;
  for (const auto& qrecord : queries) {
    const auto query = bio::ProteinSequence::parse(qrecord.sequence);
    blast::Tblastn engine{query, blast::TblastnConfig{}};
    for (const auto& rrecord : refs) {
      const auto ref =
          bio::NucleotideSequence::parse(bio::SeqKind::Dna, rrecord.sequence);
      const auto result = engine.search(ref);
      for (const auto& hit : result.hits)
        std::cout << qrecord.id << "\t" << rrecord.id << "\t"
                  << hit.dna_position << "\tframe=" << hit.frame
                  << "\tbits=" << hit.bits << "\te=" << hit.evalue << '\n';
    }
  }
  std::cerr << "wall time: " << util::time_text(timer.seconds()) << '\n';
  return 0;
}

int cmd_map(std::size_t residues, const std::string& device_name) {
  hw::FpgaDevice device =
      device_name == "vu9p" ? hw::virtex_ultrascale_plus() : hw::kintex7();
  const core::FabpMapping m = core::map_design(device, residues * 3);
  if (!m.feasible) {
    std::cout << "does not fit on " << device.name << '\n';
    return 1;
  }
  std::cout << "device " << device.name << ", query " << residues << " aa ("
            << m.query_elements << " elements)\n"
            << "  segments " << m.segments << ", channels " << m.channels
            << '\n'
            << "  LUT " << util::percent_text(m.lut_util, 1) << "  FF "
            << util::percent_text(m.ff_util, 1) << "  BRAM "
            << util::percent_text(m.bram_util, 1) << "  DSP "
            << util::percent_text(m.dsp_util, 1) << '\n'
            << "  effective bandwidth "
            << util::bandwidth_text(m.effective_bandwidth_bps) << " ("
            << (m.bottleneck == core::Bottleneck::Resources ? "resource"
                                                            : "bandwidth")
            << "-bound)\n";
  return 0;
}

int cmd_rtl(const std::string& out_dir, std::size_t elements) {
  std::filesystem::create_directories(out_dir);
  const auto write = [&](const hw::VerilogModule& m) {
    std::ofstream out{std::filesystem::path(out_dir) / (m.name + ".v")};
    out << m.source;
    std::cout << m.name << ".v: " << m.instance_count("LUT6") << " LUT6, "
              << m.instance_count("FDRE") << " FDRE\n";
  };
  write(core::emit_comparator_module());
  write(hw::emit_pop36_module());
  core::InstanceConfig config;
  config.elements = elements;
  config.threshold = static_cast<std::uint32_t>(elements * 4 / 5);
  write(core::emit_instance_module(config));
  return 0;
}

int cmd_chaos(std::size_t bases, std::size_t query_aa, std::size_t seeds,
              std::vector<double> rates) {
  // Fault-injection sweep: align the same query under increasing per-bit
  // flip rates (x `seeds` independent schedules each) and require the
  // recovered hits to stay bit-identical to the zero-fault golden run.
  if (rates.empty()) rates = {1e-9, 1e-8, 1e-7, 1e-6, 1e-5};

  util::Xoshiro256 rng{4242};
  const auto dna = bio::random_dna(bases, rng);
  const auto query = bio::random_protein(query_aa, rng);
  const auto threshold =
      static_cast<std::uint32_t>(query_aa * 3 * 45 / 100);

  core::Session golden_session;
  golden_session.upload_reference(dna);
  const auto golden = golden_session.align(query, threshold);
  std::cerr << "reference " << bases << " bases, query " << query_aa
            << " aa, threshold " << threshold << ", golden "
            << golden.hits.size() << " hit(s) in "
            << util::time_text(golden.total_s) << '\n';

  std::cout << std::left << std::setw(11) << "flip-rate" << std::right
            << std::setw(6) << "runs" << std::setw(7) << "crc"
            << std::setw(8) << "rescan" << std::setw(9) << "retries"
            << std::setw(10) << "fallback" << std::setw(12) << "recovery"
            << std::setw(10) << "overhead" << "  match\n";

  bool all_match = true;
  for (const double rate : rates) {
    core::RecoveryStats merged;
    double swept_s = 0.0;
    bool match = true;
    for (std::size_t s = 0; s < seeds; ++s) {
      core::HostConfig config;
      config.fault.seed = 0xc4a05c0deULL + s;
      config.fault.flip_rate = rate;
      core::Session session{config};
      session.upload_reference(dna);
      const auto result = session.try_align(query, threshold);
      if (!result) {
        std::cerr << "rate " << rate << " seed " << s << ": "
                  << core::to_string(result.error().code) << ": "
                  << result.error().message << '\n';
        match = false;
        continue;
      }
      merged.merge(result->recovery);
      swept_s += result->total_s;
      if (result->hits != golden.hits) match = false;
    }
    all_match = all_match && match;
    const double overhead =
        golden.total_s > 0.0
            ? swept_s / (static_cast<double>(seeds) * golden.total_s) - 1.0
            : 0.0;
    std::cout << std::left << std::setw(11) << rate << std::right
              << std::setw(6) << seeds << std::setw(7) << merged.crc_faults
              << std::setw(8) << merged.rescanned_tiles << std::setw(9)
              << merged.retries << std::setw(10) << merged.fallbacks
              << std::setw(12) << util::time_text(merged.recovery_s)
              << std::setw(10) << util::percent_text(overhead, 2)
              << (match ? "  ok" : "  DIVERGED") << '\n';
  }
  if (!all_match) {
    std::cerr << "chaos: recovered hits diverged from the golden run\n";
    return 1;
  }
  return 0;
}

// Formatted engine/pipeline/shard stats, shared by the burst demo's stdout
// dump and the TCP server's StatsResponse.  The "pipeline: invocations="
// line is load-bearing: the cli_serve_hwsim smoke test greps for it.
std::string serve_stats_text(core::Engine& engine) {
  std::ostringstream out;
  const core::EngineStats stats = engine.stats();
  out << "engine: submitted=" << stats.submitted << " completed="
      << stats.completed << " failed=" << stats.failed << " batches="
      << stats.coalesced_batches << " occupancy=" << stats.batch_occupancy()
      << " largest=" << stats.largest_batch << "\n";
  const core::DevicePipelineStats pipe = engine.pipeline_stats();
  if (pipe.invocations > 0)
    out << "pipeline: invocations=" << pipe.invocations << " tasks="
        << pipe.tasks << " retried=" << pipe.retried_invocations << " pe="
        << pipe.pe_count << " depth=" << pipe.buffer_depth << " largest="
        << pipe.largest_invocation << " occupancy=" << pipe.occupancy()
        << " overlap=" << pipe.overlap_efficiency() << " pe_util="
        << pipe.pe_utilization() << " modeled_qps=" << pipe.modeled_qps()
        << "\n";
  for (const core::ShardStatus& shard : engine.shard_status())
    out << "shard " << shard.index << ": owned=[" << shard.owned_begin << ","
        << shard.owned_end << ") slice=" << shard.slice_elements
        << " health="
        << (shard.health == core::HealthState::Degraded ? "degraded"
                                                        : "healthy")
        << (shard.routed_to_fallback ? "(fallback)" : "") << " queue="
        << shard.queue_depth << " peak=" << shard.peak_queue_depth
        << " batches=" << shard.batches_executed << " fallback-batches="
        << shard.fallback_batches << " faults=" << shard.fault_events
        << " retries=" << shard.recovery.retries << " rescans="
        << shard.recovery.rescanned_tiles << " fallbacks="
        << shard.recovery.fallbacks << "\n";
  if (engine.shard_count() > 1)
    out << "router: shards=" << engine.shard_count()
        << " scatter+gather=" << util::time_text(
               engine.shard_overhead_seconds())
        << "\n";
  // Multi-tenant view: one line per resident database (with the live
  // per-generation refcounts of the versioned store) and one per tenant.
  // serve_tcp_swap_smoke.sh greps the database lines for generation= and
  // reclaimed=.
  for (const core::DatabaseStatus& db : engine.database_status()) {
    out << "database " << db.name << ": generation=" << db.active_generation
        << " swaps=" << db.swaps << " submitted=" << db.submitted
        << " completed=" << db.completed << " failed=" << db.failed
        << " qps=" << db.qps << " p50=" << db.p50_ms << "ms p99="
        << db.p99_ms << "ms degraded=" << (db.degraded ? 1 : 0)
        << " fallback-batches=" << db.fallback_batches << " reclaimed="
        << db.reclaimed_generations << "\n";
    for (const auto& gen : db.generations)
      out << "  generation " << gen.generation << ": pins=" << gen.pins
          << (gen.active ? " active" : " retired") << "\n";
  }
  for (const core::TenantStatus& tenant : engine.tenant_status())
    out << "tenant " << tenant.name << ": weight=" << tenant.weight
        << " quota=" << tenant.quota << " depth=" << tenant.queue_depth
        << " peak=" << tenant.peak_depth << " submitted="
        << tenant.submitted << " dequeued=" << tenant.dequeued
        << " completed=" << tenant.completed << " failed=" << tenant.failed
        << " quota-rejections=" << tenant.quota_rejections << " qps="
        << tenant.qps << " p50=" << tenant.p50_ms << "ms p99="
        << tenant.p99_ms << "ms\n";
  return out.str();
}

sigset_t drain_signal_set() {
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  return mask;
}

// Real TCP server over the engine: accept loop on this thread, graceful
// drain on SIGTERM/SIGINT via a dedicated sigwait thread.  The caller
// must have blocked drain_signal_set() *before spawning any thread* (the
// shard router's workers start in the Engine constructor) — a single
// unmasked thread would take the default fatal action instead.
int cmd_serve_tcp(core::Engine& engine, net::ServerConfig server_config) {
  const sigset_t mask = drain_signal_set();
  // SwapDatabase admin frames publish a new generation on the live
  // engine: by server-side file (FASTA or raw ACGT) or inline bases.
  // In-flight aligns keep finishing on the generation they were admitted
  // under; failures come back typed on the admin connection.
  const auto swap_handler = [&engine](const net::SwapDatabaseRequest& req) {
    net::SwapDatabaseResponse response;
    try {
      if (req.name.empty())
        throw std::runtime_error{"swap: database name must be non-empty"};
      if (req.path.empty() == req.bases.empty())
        throw std::runtime_error{
            "swap: exactly one of path and bases must be set"};
      bio::PackedNucleotides packed =
          req.path.empty()
              ? bio::PackedNucleotides{bio::NucleotideSequence::parse(
                    bio::SeqKind::Dna, req.bases)}
              : load_reference_file(req.path);
      response.generation =
          engine.upload_database(req.name, std::move(packed));
      std::cerr << "swap: database " << req.name << " -> generation "
                << response.generation << "\n";
    } catch (const std::exception& e) {
      response.status =
          static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
      response.error = e.what();
    }
    return response;
  };
  net::WireServer server{engine, server_config,
                         [&engine] { return serve_stats_text(engine); },
                         swap_handler};
  // Parsed by tools/serve_tcp_smoke.sh and human eyes alike; flush so a
  // piped reader sees the port before the first connection.
  std::cout << "listening on " << server_config.bind_address << ":"
            << server.port() << std::endl;

  std::thread signal_thread{[&mask, &server] {
    int sig = 0;
    sigwait(&mask, &sig);
    std::cerr << "signal " << sig << ": draining\n";
    server.shutdown();
  }};
  server.serve();
  signal_thread.join();

  const net::ServerMetrics metrics = server.metrics();
  std::cout << "server: connections=" << metrics.connections << " requests="
            << metrics.requests << " errors=" << metrics.errors
            << " malformed=" << metrics.malformed << " integrity="
            << metrics.integrity << " swaps=" << metrics.swaps << " shed="
            << metrics.shed << " io-timeouts=" << metrics.io_timeouts
            << " force-cancelled=" << metrics.force_cancelled << " p50="
            << metrics.p50_ms << "ms p99=" << metrics.p99_ms << "ms max="
            << metrics.max_ms << "ms\n"
            << serve_stats_text(engine) << "drained\n";
  return 0;
}

int cmd_serve(std::size_t bases, std::size_t query_aa, std::size_t requests,
              std::size_t workers, const std::string& backend,
              std::size_t shards, bool tcp,
              const net::ServerConfig& server_config,
              const std::vector<std::pair<std::string, std::string>>& dbs,
              std::vector<core::TenantConfig> tenants) {
  if (tcp) {
    // Must precede the Engine (and its shard worker threads): every
    // thread inherits this mask, routing SIGTERM/SIGINT to the sigwait
    // drain thread instead of the default fatal disposition.
    const sigset_t mask = drain_signal_set();
    pthread_sigmask(SIG_BLOCK, &mask, nullptr);
  }
  // Serving-engine demo: a burst of concurrent align requests against one
  // resident reference, drained by the worker pool with request
  // coalescing, self-checked hit-for-hit against sequential execution.
  util::Xoshiro256 rng{7788};
  const auto dna = bio::random_dna(bases, rng);
  std::vector<bio::ProteinSequence> queries;
  for (std::size_t i = 0; i < 8; ++i)
    queries.push_back(bio::random_protein(query_aa, rng));
  // 65% of elements: selective on random DNA (the ~45% median random
  // score stays under it), so hit lists stay small and the run measures
  // scan throughput rather than hit copying.
  const auto threshold = [&](const bio::ProteinSequence& query) {
    return static_cast<std::uint32_t>(query.size() * 3 * 65 / 100);
  };

  core::EngineConfig config;
  config.backend = backend_kind_from(backend);
  config.workers = workers;
  config.queue_capacity = std::max<std::size_t>(requests, 64);
  config.shard.shard_count = shards;
  config.tenants = std::move(tenants);
  core::Engine engine{config};
  engine.upload_reference(dna);
  for (const auto& [name, path] : dbs) {
    const std::uint64_t generation =
        engine.upload_database(name, load_reference_file(path));
    std::cerr << "database " << name << ": " << path << " -> generation "
              << generation << "\n";
  }
  std::cerr << "reference " << bases << " bases, " << queries.size()
            << " distinct queries x " << requests << " requests, "
            << workers << " worker(s), backend " << backend << ", "
            << shards << " shard(s)\n";

  if (tcp) return cmd_serve_tcp(engine, server_config);

  // Sequential truth (and baseline wall time) on the same engine state.
  std::vector<std::vector<core::Hit>> expected;
  util::Timer sequential_timer;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto& query = queries[i % queries.size()];
    auto report = engine.align_sync(query, threshold(query));
    if (i < queries.size()) expected.push_back(std::move(report->hits));
  }
  const double sequential_s = sequential_timer.seconds();

  util::Timer burst_timer;
  std::vector<core::Ticket> tickets;
  tickets.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto& query = queries[i % queries.size()];
    tickets.push_back(engine.submit(query, threshold(query)));
  }
  bool match = true;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    auto outcome = tickets[i].wait();
    if (!outcome) {
      std::cerr << "request " << i << ": "
                << core::to_string(outcome.error().code) << ": "
                << outcome.error().message << '\n';
      match = false;
      continue;
    }
    if (outcome->hits != expected[i % queries.size()]) match = false;
  }
  const double burst_s = burst_timer.seconds();

  const core::EngineStats stats = engine.stats();
  std::cout << "sequential: " << util::time_text(sequential_s) << " ("
            << static_cast<double>(requests) / sequential_s
            << " req/s)\n"
            << "coalesced:  " << util::time_text(burst_s) << " ("
            << static_cast<double>(requests) / burst_s << " req/s)\n"
            << "batches " << stats.coalesced_batches << ", occupancy "
            << stats.batch_occupancy() << ", largest "
            << stats.largest_batch << ", compiler hits "
            << engine.compiler_stats().hits << "\n"
            << serve_stats_text(engine);
  if (!match) {
    std::cerr << "serve: coalesced results diverged from sequential\n";
    return 1;
  }
  return 0;
}

/// Admin client for the SwapDatabase message: publish a new generation of
/// `name` on a live server, by server-side path or (--inline) by reading
/// the local file and shipping its bases over the wire.
int cmd_swap(const std::string& host, std::uint16_t port,
             const std::string& name, const std::string& path,
             bool send_inline) {
  net::SwapDatabaseRequest request;
  request.name = name;
  if (send_inline) {
    std::ifstream in{path};
    if (!in) throw std::runtime_error{"cannot open reference file: " + path};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    request.bases = buffer.str();
    std::erase_if(request.bases,
                  [](unsigned char ch) { return std::isspace(ch); });
  } else {
    request.path = path;
  }

  net::Socket conn = net::connect_to(host, port);
  if (!net::write_frame(conn.fd(), net::encode(request)))
    throw std::runtime_error{"swap: failed to send the request"};
  std::string payload;
  if (!net::read_frame(conn.fd(), payload))
    throw std::runtime_error{"swap: connection lost before the response"};
  net::SwapDatabaseResponse response;
  if (!net::decode(payload, response))
    throw std::runtime_error{"swap: malformed response"};
  if (!response.ok()) {
    std::cerr << "swap failed: "
              << core::to_string(static_cast<core::ErrorCode>(response.status))
              << ": " << response.error << "\n";
    return 1;
  }
  std::cout << "swapped " << name << " -> generation "
            << response.generation << "\n";
  return 0;
}

int cmd_loadgen(net::LoadgenConfig config) {
  std::cerr << "loadgen: " << config.requests << " requests x "
            << config.clients << " client(s), " << config.query_residues
            << " aa queries -> " << config.host << ":" << config.port
            << "\n";
  const net::LoadgenReport report = net::run_loadgen(config);
  std::cout << "loadgen: sent=" << report.sent << " completed="
            << report.completed << " errors=" << report.errors
            << " transport-failures=" << report.transport_failures
            << " hits=" << report.total_hits << "\n"
            << "loadgen: refused=" << report.refused << " expired="
            << report.expired << " resets=" << report.resets << " timeouts="
            << report.timeouts << " attempts=" << report.attempts
            << " retries=" << report.retries << " integrity-faults="
            << report.integrity_faults << " amplification="
            << report.retry_amplification() << "\n";
  if (report.attackers > 0)
    std::cout << "loadgen: attackers=" << report.attackers
              << " attack-frames=" << report.attack_frames << "\n";
  std::cout << "loadgen: wall=" << util::time_text(report.wall_s) << " qps="
            << report.qps << " p50=" << report.p50_ms << "ms p99="
            << report.p99_ms << "ms\n";
  // With resilience knobs on (a deadline or attackers), shed/expired
  // outcomes are the point of the run: success means every request
  // reached a *typed terminal* outcome and nothing hung or vanished.
  // A plain run keeps the strict contract: all requests completed ok.
  const bool resilience_run =
      config.deadline_s > 0.0 || config.faulty_fraction > 0.0;
  if (resilience_run) return report.all_terminal() ? 0 : 1;
  return report.clean() && report.completed == report.sent ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "isa" && argc == 2) return cmd_isa();
    if (command == "encode" && argc == 3) return cmd_encode(argv[2]);
    if (command == "search" && (argc == 4 || argc == 5))
      return cmd_search(argv[2], argv[3],
                        argc == 5 ? std::strtod(argv[4], nullptr) : 0.85);
    if (command == "scan" && argc >= 4 && argc <= 6)
      return cmd_scan(argv[2], argv[3],
                      argc >= 5 ? std::strtod(argv[4], nullptr) : 0.85,
                      argc == 6 ? std::strtoull(argv[5], nullptr, 10)
                                : std::thread::hardware_concurrency());
    if (command == "tblastn" && argc == 4)
      return cmd_tblastn(argv[2], argv[3]);
    if (command == "map" && (argc == 3 || argc == 4))
      return cmd_map(std::strtoull(argv[2], nullptr, 10),
                     argc == 4 ? argv[3] : "kintex7");
    if (command == "rtl" && (argc == 3 || argc == 4))
      return cmd_rtl(argv[2],
                     argc == 4 ? std::strtoull(argv[3], nullptr, 10) : 36);
    if (command == "chaos") {
      std::vector<double> rates;
      for (int i = 5; i < argc; ++i)
        rates.push_back(std::strtod(argv[i], nullptr));
      return cmd_chaos(
          argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000,
          argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 16,
          argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 3,
          std::move(rates));
    }
    if (command == "serve") {
      std::string backend = "hwsim";
      std::size_t shards = 1;
      bool tcp = false;
      net::ServerConfig server_config;
      std::vector<std::pair<std::string, std::string>> dbs;
      std::vector<core::TenantConfig> tenants;
      std::vector<std::string> positional;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--backend" && i + 1 < argc) {
          backend = argv[++i];
        } else if (arg == "--db" && i + 1 < argc) {
          dbs.push_back(split_name_value(argv[++i], "--db"));
        } else if (arg == "--tenant" && i + 1 < argc) {
          tenants.push_back(parse_tenant_flag(argv[++i]));
        } else if (arg == "--shards" && i + 1 < argc) {
          shards = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--tcp") {
          tcp = true;
          // Optional port operand (0 = kernel-assigned).
          if (i + 1 < argc && std::isdigit(argv[i + 1][0]))
            server_config.port = static_cast<std::uint16_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--shed-depth" && i + 1 < argc) {
          server_config.shed_queue_depth =
              std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--shed-p99" && i + 1 < argc) {
          server_config.shed_p99_ms = std::strtod(argv[++i], nullptr);
        } else if (arg == "--max-inflight" && i + 1 < argc) {
          server_config.max_inflight_per_connection =
              std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--idle-timeout" && i + 1 < argc) {
          server_config.idle_timeout_s = std::strtod(argv[++i], nullptr);
        } else if (arg == "--io-timeout" && i + 1 < argc) {
          server_config.io_timeout_s = std::strtod(argv[++i], nullptr);
        } else if (arg == "--drain-timeout" && i + 1 < argc) {
          server_config.drain_timeout_s = std::strtod(argv[++i], nullptr);
        } else if (arg == "--net-fault-rate" && i + 1 < argc) {
          const double rate = std::strtod(argv[++i], nullptr);
          server_config.fault.corrupt_rate = rate;
          server_config.fault.truncate_rate = rate;
          server_config.fault.reset_rate = rate;
          server_config.fault.dup_rate = rate;
          server_config.fault.delay_rate = rate;
        } else if (arg == "--net-fault-seed" && i + 1 < argc) {
          server_config.fault.seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
          positional.push_back(arg);
        }
      }
      if (positional.size() <= 4)
        return cmd_serve(
            !positional.empty()
                ? std::strtoull(positional[0].c_str(), nullptr, 10)
                : 100000,
            positional.size() > 1
                ? std::strtoull(positional[1].c_str(), nullptr, 10)
                : 16,
            positional.size() > 2
                ? std::strtoull(positional[2].c_str(), nullptr, 10)
                : 256,
            positional.size() > 3
                ? std::strtoull(positional[3].c_str(), nullptr, 10)
                : 2,
            backend, shards, tcp, server_config, dbs, std::move(tenants));
    }
    if (command == "swap" && argc >= 6) {
      bool send_inline = false;
      std::vector<std::string> positional;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--inline")
          send_inline = true;
        else
          positional.push_back(arg);
      }
      if (positional.size() == 4)
        return cmd_swap(positional[0],
                        static_cast<std::uint16_t>(
                            std::strtoul(positional[1].c_str(), nullptr, 10)),
                        positional[2], positional[3], send_inline);
    }
    if (command == "loadgen" && argc >= 4) {
      net::LoadgenConfig config;
      std::vector<std::string> positional;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--deadline-ms" && i + 1 < argc) {
          config.deadline_s = std::strtod(argv[++i], nullptr) / 1e3;
        } else if (arg == "--db" && i + 1 < argc) {
          config.database = argv[++i];
        } else if (arg == "--tenant" && i + 1 < argc) {
          config.tenant = argv[++i];
        } else if (arg == "--retries" && i + 1 < argc) {
          // N retries = N + 1 total wire attempts; 0 disables retrying.
          config.retry.max_attempts =
              std::strtoull(argv[++i], nullptr, 10) + 1;
        } else if (arg == "--faulty-fraction" && i + 1 < argc) {
          config.faulty_fraction = std::strtod(argv[++i], nullptr);
        } else if (arg == "--net-fault-rate" && i + 1 < argc) {
          const double rate = std::strtod(argv[++i], nullptr);
          config.fault.corrupt_rate = rate;
          config.fault.truncate_rate = rate;
          config.fault.reset_rate = rate;
          config.fault.dup_rate = rate;
          config.fault.delay_rate = rate;
        } else if (arg == "--net-fault-seed" && i + 1 < argc) {
          config.fault.seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
          positional.push_back(arg);
        }
      }
      if (positional.size() >= 2 && positional.size() <= 5) {
        config.host = positional[0];
        config.port = static_cast<std::uint16_t>(
            std::strtoul(positional[1].c_str(), nullptr, 10));
        config.requests =
            positional.size() > 2
                ? std::strtoull(positional[2].c_str(), nullptr, 10)
                : 64;
        config.clients =
            positional.size() > 3
                ? std::strtoull(positional[3].c_str(), nullptr, 10)
                : 4;
        config.query_residues =
            positional.size() > 4
                ? std::strtoull(positional[4].c_str(), nullptr, 10)
                : 16;
        return cmd_loadgen(std::move(config));
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
