#!/usr/bin/env bash
# End-to-end smoke of the TCP front-end: spawn `fabp serve --tcp` on a
# kernel-assigned port (sharded, hw-sim backend), fire one loadgen burst
# over localhost, SIGTERM the server, and require a clean graceful drain
# (the "drained" marker plus per-shard stats in the final dump).
# Usage: serve_tcp_smoke.sh <path-to-fabp-binary>
set -euo pipefail

FABP="${1:?usage: serve_tcp_smoke.sh <path-to-fabp>}"
out="$(mktemp)"
pid=""
trap 'kill -9 "$pid" 2>/dev/null || true; rm -f "$out"' EXIT

"$FABP" serve 20000 12 64 2 --backend hwsim --shards 2 --tcp 0 \
  >"$out" 2>/dev/null &
pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$out")"
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died before listening"; exit 1; }
  sleep 0.1
done
[ -n "$port" ] || { echo "server never reported its port"; exit 1; }

"$FABP" loadgen 127.0.0.1 "$port" 16 2 12

kill -TERM "$pid"
wait "$pid"

grep -q '^drained$' "$out" || { echo "no clean drain marker"; cat "$out"; exit 1; }
grep -q 'requests=16' "$out" || { echo "server miscounted requests"; cat "$out"; exit 1; }
grep -q '^shard 1:' "$out" || { echo "no per-shard stats in dump"; cat "$out"; exit 1; }
echo "serve_tcp smoke ok"
